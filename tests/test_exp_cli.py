"""Tests for the ``repro sweep`` subcommand and ``compare --jobs``."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps({
        "name": "cli-sweep",
        "description": "tiny CLI sweep",
        "base": {"source": "wristwatch", "duration_s": 0.2, "seed": 11},
        "axes": {"capacitance_f": [6.8e-08, 1.5e-07]},
    }))
    return str(path)


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    path = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(path))
    return path


class TestParser:
    def test_sweep_parses(self, spec_file):
        args = build_parser().parse_args([
            "sweep", spec_file, "--jobs", "2", "--no-cache", "--fresh",
        ])
        assert args.jobs == 2
        assert args.no_cache and args.fresh
        assert callable(args.func)

    def test_compare_jobs_parses(self):
        args = build_parser().parse_args(["compare", "--jobs", "3"])
        assert args.jobs == 3


class TestSweepCommand:
    def test_runs_and_reports(self, spec_file, cache_dir, capsys):
        assert main(["sweep", spec_file]) == 0
        out = capsys.readouterr().out
        assert "cli-sweep" in out
        assert "2 executed, 0 cached" in out

    def test_second_run_all_cache_hits(self, spec_file, cache_dir, capsys):
        assert main(["sweep", spec_file]) == 0
        capsys.readouterr()
        assert main(["sweep", spec_file]) == 0
        out = capsys.readouterr().out
        assert "0 executed, 2 cached, 0 failed" in out

    def test_no_cache_ignores_cache(self, spec_file, cache_dir, capsys):
        assert main(["sweep", spec_file]) == 0
        capsys.readouterr()
        assert main(["sweep", spec_file, "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "2 executed, 0 cached" in out

    def test_fresh_clears_namespace(self, spec_file, cache_dir, capsys):
        assert main(["sweep", spec_file]) == 0
        capsys.readouterr()
        assert main(["sweep", spec_file, "--fresh"]) == 0
        out = capsys.readouterr().out
        assert "cleared 2" in out
        assert "2 executed, 0 cached" in out

    def test_results_dir_written(self, spec_file, cache_dir, tmp_path,
                                 capsys):
        results = tmp_path / "results"
        assert main([
            "sweep", spec_file, "--results-dir", str(results),
        ]) == 0
        with open(results / "cli-sweep.json") as handle:
            payload = json.load(handle)
        assert payload["experiment"] == "cli-sweep"
        assert payload["sweep"]["executed"] == 2

    def test_quiet_suppresses_progress(self, spec_file, cache_dir, capsys):
        assert main(["sweep", spec_file, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "[  1/2]" not in out
        assert "sweep: 2 point(s)" in out

    def test_missing_spec_is_clean_error(self, cache_dir):
        with pytest.raises(SystemExit, match="cannot load spec"):
            main(["sweep", "/nonexistent/spec.json"])

    def test_bad_spec_is_clean_error(self, tmp_path, cache_dir):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x", "axes": {"nope": [1]}}))
        with pytest.raises(SystemExit, match="unknown config key"):
            main(["sweep", str(path)])

    def test_failed_points_set_exit_code(self, tmp_path, cache_dir, capsys):
        path = tmp_path / "fail.json"
        path.write_text(json.dumps({
            "name": "failing",
            "base": {"duration_s": 0.2, "seed": 1,
                     "nvp": {"technology": "SRAM"}},
        }))
        assert main(["sweep", str(path)]) == 1
        out = capsys.readouterr().out
        assert "1 failed" in out


class TestCompareJobs:
    def test_parallel_compare_matches_serial(self, capsys):
        assert main(["compare", "--duration", "1", "--seed", "5"]) == 0
        serial = capsys.readouterr().out
        assert main([
            "compare", "--duration", "1", "--seed", "5", "--jobs", "2",
        ]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial
        assert "nvp" in serial
