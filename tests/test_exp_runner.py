"""Tests for the parallel sweep runner: determinism, caching, isolation."""

import os

import pytest

from repro.exp import ExperimentSpec, ResultCache, SweepInterrupted, SweepRunner
from repro.exp.runner import execute_run
from repro.obs import events as ev
from repro.obs.events import EventBus
from repro.system.result import SimulationResult

#: A fast, fully deterministic base: 0.2 simulated seconds.
FAST = {"source": "wristwatch", "duration_s": 0.2, "seed": 11}


def fast_spec(**axes):
    return ExperimentSpec(name="t", base=FAST, axes=axes)


class TestExecuteRun:
    def test_returns_result_dict_and_timing(self):
        payload = execute_run(fast_spec().expand()[0])
        assert payload["wall_s"] > 0
        result = SimulationResult.from_dict(payload["result"])
        assert result.label == "nvp"
        assert result.duration_s == pytest.approx(0.2)

    def test_platform_presets_all_buildable(self):
        for platform in ("nvp", "wait", "checkpoint", "oracle"):
            config = fast_spec().expand()[0] | {"platform": platform}
            assert execute_run(config)["result"]["label"]

    def test_kernel_workload(self):
        config = fast_spec().expand()[0] | {
            "source": "constant", "mean_uw": 300.0,
            "kernel": "crc", "frames": 1, "duration_s": 3.0,
            "stop_when_finished": True,
        }
        result = execute_run(config)["result"]
        assert result["completed"] is True

    def test_profile_source_matches_standard_profiles(self):
        from repro.harvest.sources import standard_profiles
        from repro.system.presets import build_nvp, standard_rectifier
        from repro.system.simulator import SystemSimulator
        from repro.workloads.base import AbstractWorkload

        config = fast_spec().expand()[0] | {
            "source": "profile", "profile_index": 1, "seed": 2017,
            "duration_s": 0.5,
        }
        via_engine = execute_run(config)["result"]
        trace = standard_profiles(duration_s=0.5, seed=2017)[1]
        direct = SystemSimulator(
            trace, build_nvp(AbstractWorkload()),
            rectifier=standard_rectifier(), stop_when_finished=False,
        ).run()
        assert via_engine == direct.to_dict()

    def test_profile_index_out_of_range(self):
        config = fast_spec().expand()[0] | {
            "source": "profile", "profile_index": 9,
        }
        with pytest.raises(ValueError, match="profile_index"):
            execute_run(config)

    def test_retention_policy_spec_resolves(self):
        config = fast_spec().expand()[0] | {
            "nvp": {
                "technology": "STT-MRAM",
                "retention_policy": {
                    "kind": "log", "t_lsb_s": 1e-2, "t_msb_s": 1e5,
                },
            },
        }
        assert execute_run(config)["result"]["forward_progress"] >= 0

    def test_unknown_retention_kind_rejected(self):
        config = fast_spec().expand()[0] | {
            "nvp": {"retention_policy": {"kind": "cubic"}},
        }
        with pytest.raises(ValueError, match="retention policy"):
            execute_run(config)


class TestDeterminism:
    def test_same_spec_twice_identical_hashes_and_results(self):
        spec = fast_spec(capacitance_f=[68e-9, 150e-9])
        first = SweepRunner().run(spec.expand())
        second = SweepRunner().run(spec.expand())
        assert [r.key for r in first] == [r.key for r in second]
        assert [r.result for r in first] == [r.result for r in second]

    def test_parallel_matches_serial(self):
        spec = fast_spec(capacitance_f=[68e-9, 150e-9, 470e-9, 2.2e-6])
        serial = SweepRunner(jobs=1).run(spec.expand())
        parallel = SweepRunner(jobs=2).run(spec.expand())
        assert serial.executed == parallel.executed == 4
        assert [r.result for r in serial] == [r.result for r in parallel]


class TestCaching:
    def test_second_run_executes_nothing(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = fast_spec(seed=[1, 2, 3])
        first = SweepRunner(cache=cache).run(spec.expand())
        assert (first.executed, first.cached) == (3, 0)
        second = SweepRunner(cache=cache).run(spec.expand())
        assert (second.executed, second.cached) == (0, 3)
        assert [r.result for r in first] == [r.result for r in second]
        assert all(r.status == "cached" for r in second)

    def test_mutated_axis_runs_only_new_points(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        SweepRunner(cache=cache).run(fast_spec(seed=[1, 2]).expand())
        grown = SweepRunner(cache=cache).run(
            fast_spec(seed=[1, 2, 3, 4]).expand()
        )
        assert (grown.executed, grown.cached) == (2, 2)
        statuses = [r.status for r in grown]
        assert statuses == ["cached", "cached", "ok", "ok"]

    def test_base_change_misses_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        SweepRunner(cache=cache).run(fast_spec(seed=[1]).expand())
        other = ExperimentSpec(
            name="t", base=dict(FAST, duration_s=0.3), axes={"seed": [1]}
        )
        rerun = SweepRunner(cache=cache).run(other.expand())
        assert (rerun.executed, rerun.cached) == (1, 0)

    def test_no_cache_always_executes(self):
        spec = fast_spec(seed=[1])
        runner = SweepRunner()
        assert runner.run(spec.expand()).executed == 1
        assert runner.run(spec.expand()).executed == 1

    def test_interrupted_sweep_resumes(self, tmp_path):
        # Simulate an interruption: only the first half completed.
        cache = ResultCache(str(tmp_path))
        spec = fast_spec(seed=[1, 2, 3, 4])
        SweepRunner(cache=cache).run(spec.expand()[:2])
        resumed = SweepRunner(cache=cache).run(spec.expand())
        assert (resumed.executed, resumed.cached) == (2, 2)


class TestIsolation:
    def _bad_config(self):
        # Valid declaratively, raises at build time in the worker:
        # an NVP cannot keep state in volatile SRAM.
        return fast_spec().expand()[0] | {"nvp": {"technology": "SRAM"}}

    def test_failed_point_recorded_sweep_continues_serial(self):
        configs = fast_spec(seed=[1, 2]).expand()
        outcome = SweepRunner(jobs=1).run([configs[0], self._bad_config(),
                                           configs[1]])
        assert outcome.failed == 1
        assert outcome.executed == 2
        assert [r.status for r in outcome] == ["ok", "failed", "ok"]
        failed = outcome.records[1]
        assert failed.result is None
        assert "volatile" in failed.error

    def test_failed_point_recorded_sweep_continues_parallel(self):
        configs = fast_spec(seed=[1, 2]).expand()
        outcome = SweepRunner(jobs=2).run([configs[0], self._bad_config(),
                                           configs[1]])
        assert outcome.failed == 1
        assert outcome.executed == 2
        assert [r.status for r in outcome] == ["ok", "failed", "ok"]

    def test_failures_are_not_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        SweepRunner(cache=cache).run([self._bad_config()])
        assert len(cache) == 0
        retry = SweepRunner(cache=cache).run([self._bad_config()])
        assert retry.failed == 1

    def test_raise_on_failure(self):
        outcome = SweepRunner().run([self._bad_config()])
        with pytest.raises(RuntimeError, match="1 of 1 sweep points"):
            outcome.raise_on_failure()


class TestRunnerApi:
    def test_rejects_bad_jobs_and_timeout(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)
        with pytest.raises(ValueError):
            SweepRunner(timeout_s=0)

    def test_outcome_iteration_and_summary(self):
        outcome = SweepRunner().run(fast_spec(seed=[1, 2]).expand())
        assert len(outcome) == 2
        assert [r.index for r in outcome] == [0, 1]
        assert "2 point(s)" in outcome.summary()
        results = outcome.simulation_results()
        assert all(isinstance(r, SimulationResult) for r in results)

    def test_progress_events_on_bus(self):
        bus = EventBus()
        log = bus.record(names=(ev.SWEEP_BEGIN, ev.SWEEP_POINT, ev.SWEEP_END))
        SweepRunner(bus=bus).run(fast_spec(seed=[1, 2]).expand())
        names = [event.name for event in log.events]
        assert names == [
            ev.SWEEP_BEGIN, ev.SWEEP_POINT, ev.SWEEP_POINT, ev.SWEEP_END,
        ]
        end = log.events[-1].data
        assert end["executed"] == 2
        assert end["failed"] == 0

    def test_cached_points_emit_progress(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = fast_spec(seed=[1])
        SweepRunner(cache=cache).run(spec.expand())
        bus = EventBus()
        log = bus.record(names=(ev.SWEEP_POINT,))
        SweepRunner(cache=cache, bus=bus).run(spec.expand())
        assert [e.data["status"] for e in log.events] == ["cached"]


class TestResourceAccounting:
    def test_execute_run_ships_resources(self):
        payload = execute_run(fast_spec().expand()[0])
        resources = payload["resources"]
        assert payload["pid"] == os.getpid()
        assert resources["pid"] == os.getpid()
        assert resources["cpu_s"] >= 0.0
        assert resources["peak_rss_kb"] > 0.0
        assert resources["cpu_s"] == pytest.approx(
            resources["cpu_user_s"] + resources["cpu_system_s"]
        )

    def test_records_carry_resources(self):
        outcome = SweepRunner().run(fast_spec(seed=[1, 2]).expand())
        for record in outcome:
            assert record.pid == os.getpid()
            assert record.peak_rss_kb > 0.0
        usage = outcome.resource_usage()
        assert usage["workers"] == 1
        assert usage["cpu_s"] == pytest.approx(
            sum(r.cpu_s for r in outcome)
        )

    def test_parallel_records_carry_worker_pids(self):
        outcome = SweepRunner(jobs=2).run(
            fast_spec(seed=[1, 2, 3, 4]).expand()
        )
        pids = {record.pid for record in outcome}
        assert None not in pids
        assert os.getpid() not in pids  # ran in pool workers
        assert 1 <= len(pids) <= 2

    def test_cache_hits_cost_nothing_this_invocation(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = fast_spec(seed=[1])
        SweepRunner(cache=cache).run(spec.expand())
        second = SweepRunner(cache=cache).run(spec.expand())
        record = second.records[0]
        assert record.status == "cached"
        assert record.pid is None
        assert record.cpu_s == 0.0
        assert second.resource_usage()["workers"] == 0

    def test_point_events_carry_resources(self):
        bus = EventBus()
        log = bus.record(names=(ev.SWEEP_POINT,))
        SweepRunner(bus=bus).run(fast_spec(seed=[1]).expand())
        data = log.events[0].data
        assert data["pid"] == os.getpid()
        assert data["cpu_s"] >= 0.0
        assert data["peak_rss_kb"] > 0.0

    def test_metrics_published_post_run(self, tmp_path):
        from repro.obs import MetricsRegistry

        cache = ResultCache(str(tmp_path))
        spec = fast_spec(seed=[1, 2])
        SweepRunner(cache=cache).run(spec.expand())
        metrics = MetricsRegistry()
        SweepRunner(cache=cache, metrics=metrics).run(spec.expand())
        hits = metrics.get("cache_hit_total")
        assert hits.labels(outcome="hit").value == 2
        assert hits.labels(outcome="miss").value == 0
        # Nothing executed, so no per-worker series appear.
        assert not metrics.get("worker_cpu_s").series()

    def test_worker_metrics_labeled_by_pid(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        SweepRunner(metrics=metrics).run(fast_spec(seed=[1]).expand())
        series = metrics.get("worker_cpu_s").series()
        assert list(series) == [(("pid", str(os.getpid())),)]
        rss = metrics.get("worker_peak_rss_kb")
        assert rss.labels(pid=str(os.getpid())).value > 0.0


def _die_or_run(config):
    """Pool target: kill the worker outright for marked configs.

    Module-level so it pickles; inherited by fork workers when the
    test monkeypatches it in as ``execute_run``.
    """
    if config.get("mean_uw") == 123.0:  # the death marker
        os._exit(1)
    return execute_run(config)


class TestWorkerDeath:
    def test_dead_worker_recorded_sweep_survives(self, monkeypatch):
        import repro.exp.runner as runner_mod

        monkeypatch.setattr(runner_mod, "execute_run", _die_or_run)
        configs = fast_spec(seed=[1, 2, 3]).expand()
        configs[1] = configs[1] | {"mean_uw": 123.0}
        outcome = SweepRunner(jobs=2).run(configs)
        dead = outcome.records[1]
        assert dead.status == "failed"
        assert dead.result is None
        assert dead.error
        assert dead.pid is None  # never reported home
        # The sweep completed and produced a full accounting.
        assert len(outcome) == 3
        assert outcome.executed + outcome.failed == 3

    def test_dead_worker_still_yields_ledger_record(self, monkeypatch):
        import time as _time

        import repro.exp.runner as runner_mod
        from repro.obs.ledger import sweep_record

        monkeypatch.setattr(runner_mod, "execute_run", _die_or_run)
        configs = fast_spec(seed=[1, 2]).expand()
        configs[0] = configs[0] | {"mean_uw": 123.0}
        started = _time.time()
        outcome = SweepRunner(jobs=2).run(configs)
        record = sweep_record(
            "sweep", "t", outcome, started, _time.time()
        )
        assert record["outcome"] == "error"
        assert record["points"]["failed"] >= 1
        assert len(record["runs"]) == 2
        assert record["error"]

    def test_dead_worker_does_not_wedge_monitor_or_spans(self, monkeypatch):
        import io

        import repro.exp.runner as runner_mod
        from repro.obs import SpanTracer, SweepMonitor

        monkeypatch.setattr(runner_mod, "execute_run", _die_or_run)
        configs = fast_spec(seed=[1, 2, 3]).expand()
        configs[2] = configs[2] | {"mean_uw": 123.0}
        bus = EventBus()
        monitor = SweepMonitor(
            stream=io.StringIO(), interactive=False
        ).attach(bus)
        tracer = SpanTracer()
        SweepRunner(jobs=2, bus=bus, tracer=tracer).run(configs)
        assert monitor.done == 3
        assert monitor.failed >= 1
        # Spans merged only from workers that reported home.
        assert any(s.name == "sweep" for s in tracer.spans)


class TestInterrupt:
    def test_interrupt_carries_partial_outcome(self, monkeypatch):
        import repro.exp.runner as runner_mod

        calls = {"n": 0}

        def interrupt_on_second(config):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt
            return execute_run(config)

        monkeypatch.setattr(runner_mod, "execute_run", interrupt_on_second)
        with pytest.raises(SweepInterrupted) as info:
            SweepRunner(jobs=1).run(fast_spec(seed=[1, 2, 3]).expand())
        outcome = info.value.outcome
        assert isinstance(info.value, KeyboardInterrupt)
        assert outcome.executed == 1
        assert outcome.interrupted == 2
        statuses = [r.status for r in outcome]
        assert statuses == ["ok", "interrupted", "interrupted"]
        assert "2 interrupted" in outcome.summary()

    def test_uninterrupted_summary_unchanged(self):
        outcome = SweepRunner().run(fast_spec(seed=[1]).expand())
        assert "interrupted" not in outcome.summary()

    def test_interrupt_emits_sweep_end(self, monkeypatch):
        import repro.exp.runner as runner_mod

        def interrupt(config):
            raise KeyboardInterrupt

        monkeypatch.setattr(runner_mod, "execute_run", interrupt)
        bus = EventBus()
        log = bus.record(names=(ev.SWEEP_END,))
        with pytest.raises(SweepInterrupted):
            SweepRunner(bus=bus).run(fast_spec(seed=[1, 2]).expand())
        assert len(log.events) == 1
        assert log.events[0].data["interrupted"] == 2


class TestResultHydration:
    def test_from_dict_ignores_derived_keys(self):
        outcome = SweepRunner().run(fast_spec().expand())
        record = outcome.records[0]
        hydrated = record.simulation_result()
        assert hydrated.to_dict() == record.result

    def test_failed_record_hydrates_to_none(self):
        bad = fast_spec().expand()[0] | {"nvp": {"technology": "SRAM"}}
        outcome = SweepRunner().run([bad])
        assert outcome.records[0].simulation_result() is None
