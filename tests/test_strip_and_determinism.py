"""Tests for the telemetry strip renderer and end-to-end determinism."""

import numpy as np
import pytest

from repro.core.config import NVPConfig
from repro.core.nvp import NVPPlatform
from repro.harvest.sources import square_trace, wristwatch_trace
from repro.nvm.array import NVMArray
from repro.nvm.ecc import CODEWORD_BITS
from repro.nvm.retention import LinearPolicy, UniformPolicy
from repro.nvm.technology import STT_MRAM
from repro.system.presets import build_nvp, standard_rectifier
from repro.system.simulator import SystemSimulator
from repro.system.telemetry import Telemetry
from repro.workloads.base import AbstractWorkload


class TestRenderStrip:
    def make_telemetry(self):
        trace = square_trace(800e-6, 0.0, 0.05, 0.5, 0.5)
        telemetry = Telemetry()
        SystemSimulator(
            trace, build_nvp(AbstractWorkload()),
            stop_when_finished=False, telemetry=telemetry,
        ).run()
        return telemetry

    def test_strip_shows_the_power_cycle(self):
        strip = self.make_telemetry().render_strip(60)
        # The canonical cycle: restore, run, backup, off.
        assert "R" in strip
        assert "#" in strip
        assert "B" in strip
        assert "." in strip
        assert "state :" in strip and "energy:" in strip

    def test_strip_width_respected(self):
        telemetry = self.make_telemetry()
        strip = telemetry.render_strip(40)
        state_line = strip.splitlines()[0]
        assert len(state_line) <= len("state : ") + 40

    def test_empty_telemetry(self):
        assert "no telemetry" in Telemetry().render_strip()

    def test_width_validation(self):
        with pytest.raises(ValueError):
            Telemetry().render_strip(1)


class TestDeterminism:
    def run_once(self):
        trace = wristwatch_trace(2.0, seed=77)
        platform = NVPPlatform(
            AbstractWorkload(),
            build_nvp(AbstractWorkload()).storage.__class__(
                150e-9, v_max_v=3.3
            ),
            NVPConfig(
                technology=STT_MRAM,
                retention_policy=LinearPolicy(10e-3, STT_MRAM.retention_s),
            ),
            seed=5,
        )
        return SystemSimulator(
            trace, platform, rectifier=standard_rectifier(),
            stop_when_finished=False,
        ).run()

    def test_identical_seeds_identical_results(self):
        """The whole stack — stochastic traces, retention sampling,
        platform state machine — must be bit-reproducible."""
        first = self.run_once()
        second = self.run_once()
        assert first.forward_progress == second.forward_progress
        assert first.backups == second.backups
        assert first.extras == second.extras
        assert first.consumed_j == second.consumed_j


class TestECCArrayAging:
    def test_22_bit_words_age_like_any_array(self, rng):
        array = NVMArray(
            16, STT_MRAM, policy=UniformPolicy(1e-3),
            word_bits=CODEWORD_BITS,
        )
        array.write_block(0, [0] * 16)
        flips = array.power_outage(1.0, rng)
        assert flips > 0
        assert len(array.stats.bit_failures) == CODEWORD_BITS

    def test_shaped_policy_on_codeword_width(self, rng):
        policy = LinearPolicy(1e-4, STT_MRAM.retention_s)
        array = NVMArray(
            32, STT_MRAM, policy=policy, word_bits=CODEWORD_BITS
        )
        array.write_block(0, [0] * 32)
        array.power_outage(0.1, rng)
        # The top (parity-range) bits carry long retention: no failures.
        assert array.stats.bit_failures[0] > 0
        assert array.stats.bit_failures[CODEWORD_BITS - 1] == 0


class TestTelemetryWindow:
    def test_window_slices(self):
        telemetry = TestRenderStrip().make_telemetry()
        sliced = telemetry.window(10, 50)
        assert len(sliced) == 50
        assert sliced.times_s[0] == telemetry.times_s[10]

    def test_window_clamps_at_end(self):
        telemetry = TestRenderStrip().make_telemetry()
        sliced = telemetry.window(len(telemetry) - 5, 50)
        assert len(sliced) == 5

    def test_window_validation(self):
        telemetry = TestRenderStrip().make_telemetry()
        with pytest.raises(ValueError):
            telemetry.window(0, 0)
        with pytest.raises(ValueError):
            telemetry.window(len(telemetry), 10)

    def test_first_index(self):
        telemetry = TestRenderStrip().make_telemetry()
        first_run = telemetry.first_index("run")
        assert first_run >= 0
        assert telemetry.states[first_run] == 2
        assert telemetry.first_index("done") == -1
