"""Tests for ECC-protected backup images."""

import numpy as np
import pytest

from repro.core.backup import BackupController
from repro.core.config import NVPConfig
from repro.nvm.retention import LinearPolicy, UniformPolicy
from repro.nvm.technology import STT_MRAM


def controller_with(ecc, policy=None, sram=0):
    config = NVPConfig(
        technology=STT_MRAM,
        retention_policy=policy,
        sram_backup_words=sram,
        ecc=ecc,
    )
    return BackupController(config, data_words=8)


class TestCosts:
    def test_ecc_adds_overhead_bits(self):
        plain = controller_with(ecc=False)
        protected = controller_with(ecc=True)
        assert protected.total_backup_bits > plain.total_backup_bits
        # 8 data words: +6 bits each.
        assert protected.total_backup_bits - plain.total_backup_bits == 8 * 6

    def test_ecc_costs_more_energy(self):
        plain = controller_with(ecc=False)
        protected = controller_with(ecc=True)
        assert (
            protected.worst_case_backup_energy_j()
            > plain.worst_case_backup_energy_j()
        )

    def test_ecc_pays_off_only_with_aggressive_relaxation(self):
        """The pairing economics: ECC's 37.5% bit overhead is only
        recouped when the relaxation it licenses is aggressive.  With
        log shaping, relaxed+ECC still undercuts precise backup; with
        the mild linear shape it does not."""
        from repro.nvm.retention import LogPolicy

        precise = controller_with(ecc=False, sram=256)
        log_ecc = controller_with(
            ecc=True, policy=LogPolicy(10e-3, STT_MRAM.retention_s), sram=256
        )
        linear_ecc = controller_with(
            ecc=True, policy=LinearPolicy(10e-3, STT_MRAM.retention_s), sram=256
        )
        assert (
            log_ecc.worst_case_backup_energy_j()
            < precise.worst_case_backup_energy_j()
        )
        assert (
            linear_ecc.worst_case_backup_energy_j()
            > precise.worst_case_backup_energy_j()
        )


class TestRoundtrip:
    def test_clean_roundtrip(self, rng):
        controller = controller_with(ecc=True)
        words = [0xDEAD, 0xBEEF, 0, 1, 2, 3, 0xFFFF, 0x8000]
        controller.backup(words)
        restored, _, _ = controller.read_image()
        assert restored == words

    def test_short_outage_roundtrip_with_relaxation(self, rng):
        policy = LinearPolicy(10e-3, STT_MRAM.retention_s)
        controller = controller_with(ecc=True, policy=policy)
        words = list(range(8))
        controller.backup(words)
        controller.age(1e-3, rng)  # well within even the LSB retention
        restored, _, _ = controller.read_image()
        assert restored == words

    def test_ecc_corrects_single_bit_relaxations(self):
        """Statistically: with a mildly relaxed LSB, the protected
        controller restores exact words far more often than the
        unprotected one."""
        policy = LinearPolicy(5e-3, STT_MRAM.retention_s)
        words = [0xAAAA] * 8
        outage = 5e-3  # ~63% LSB relaxation probability per cell

        def mismatches(ecc, seed):
            controller = controller_with(ecc=ecc, policy=policy)
            rng = np.random.default_rng(seed)
            wrong = 0
            for _ in range(40):
                controller.backup(words)
                controller.age(outage, rng)
                restored, _, _ = controller.read_image()
                wrong += sum(1 for a, b in zip(restored, words) if a != b)
            return wrong

        unprotected = mismatches(False, 7)
        protected = mismatches(True, 7)
        assert unprotected > 30
        assert protected < unprotected * 0.5

    def test_corrections_counted(self, rng):
        policy = UniformPolicy(1e-3)
        config = NVPConfig(technology=STT_MRAM, retention_policy=policy, ecc=True)
        controller = BackupController(config, data_words=8)
        controller.backup([0] * 8)
        controller.age(0.5e-3, rng)
        controller.read_image()
        assert controller.ecc_corrected + controller.ecc_detected >= 0
        # After a half-retention outage, something almost surely relaxed.
        total_events = controller.ecc_corrected + controller.ecc_detected
        assert total_events > 0


class TestPlatformIntegration:
    def test_stats_expose_ecc_counters(self):
        from repro.core.nvp import NVPPlatform
        from repro.storage.capacitor import Capacitor
        from repro.workloads.base import AbstractWorkload

        platform = NVPPlatform(
            AbstractWorkload(),
            Capacitor(150e-9, v_max_v=3.3),
            NVPConfig(technology=STT_MRAM, ecc=True),
        )
        platform.tick(100e-6, 1e-4)
        stats = platform.stats()
        assert "ecc_corrected" in stats
        assert "ecc_detected" in stats
