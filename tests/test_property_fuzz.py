"""Property-based fuzzing across the stack."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import NVPConfig
from repro.core.nvp import NVPPlatform
from repro.harvest.traces import PowerTrace
from repro.isa.cpu import CPU, ExecutionError
from repro.isa.instructions import (
    IMM_MAX,
    IMM_MIN,
    Instruction,
    Opcode,
)
from repro.storage.capacitor import Capacitor, ChargeEfficiency
from repro.workloads.base import AbstractWorkload

instruction_strategy = st.builds(
    Instruction,
    opcode=st.sampled_from(sorted(Opcode)),
    rd=st.integers(0, 7),
    rs1=st.integers(0, 7),
    rs2=st.integers(0, 7),
    imm=st.integers(IMM_MIN, IMM_MAX),
)


class TestCPUFuzz:
    @given(st.lists(instruction_strategy, min_size=1, max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_random_programs_never_corrupt_invariants(self, program):
        """Any syntactically valid program executes without unexpected
        errors; registers stay 16-bit; r0 stays zero; accounting is
        monotone."""
        cpu = CPU(program)
        executed = 0
        try:
            while executed < 300 and not cpu.state.halted:
                cpu.step()
                executed += 1
                assert cpu.state.regs[0] == 0
                assert all(0 <= r <= 0xFFFF for r in cpu.state.regs)
                assert 0 <= cpu.state.pc <= 0xFFFF
        except ExecutionError:
            pass  # PC ran off the program: a defined, clean failure
        assert cpu.instructions_retired == executed
        assert cpu.cycles >= executed
        assert cpu.energy_j > 0 if executed else cpu.energy_j == 0.0

    @given(st.lists(instruction_strategy, min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_snapshot_restore_replays_identically(self, program):
        """Determinism: restoring a snapshot and re-running produces
        identical architectural state (memory effects excluded by
        running from the same memory image)."""
        first = CPU(program)
        try:
            for _ in range(50):
                if first.state.halted:
                    break
                first.step()
        except ExecutionError:
            pass
        snap = first.snapshot()
        second = CPU(program)
        second.restore(snap)
        assert second.state == snap


class TestWorkloadProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=5e-3), min_size=1, max_size=30)
    )
    @settings(max_examples=100, deadline=None)
    def test_abstract_progress_independent_of_budget_slicing(self, budgets):
        """Chopping the same total time into arbitrary tick budgets
        yields the same instruction count (within one instruction)."""
        total = sum(budgets)
        sliced = AbstractWorkload()
        for budget in budgets:
            sliced.advance(budget)
        whole = AbstractWorkload()
        whole.advance(total)
        assert abs(sliced.progress_instructions - whole.progress_instructions) <= 1

    @given(st.integers(1, 50), st.integers(1, 2000))
    @settings(max_examples=50, deadline=None)
    def test_units_completed_consistent(self, units, per_unit):
        workload = AbstractWorkload(total_units=units, instructions_per_unit=per_unit)
        result = workload.advance(1e9)
        assert workload.finished
        assert result.instructions == units * per_unit
        assert workload.units_completed == units


class TestPlatformEnergyConservation:
    @given(
        power_uw=st.floats(min_value=0.0, max_value=500.0),
        ticks=st.integers(10, 300),
    )
    @settings(max_examples=30, deadline=None)
    def test_consumed_never_exceeds_harvested_plus_initial(self, power_uw, ticks):
        """First law: a platform cannot consume more energy than it was
        offered plus what its capacitor started with."""
        cap = Capacitor(
            1e-6, v_max_v=3.3, leak_resistance_ohm=1e18,
            efficiency=ChargeEfficiency(1.0, 1.0, 0.0, 1.0),
        )
        platform = NVPPlatform(AbstractWorkload(), cap, NVPConfig())
        dt = 1e-4
        p_in = power_uw * 1e-6
        for _ in range(ticks):
            platform.tick(p_in, dt)
        harvested = p_in * dt * ticks
        assert platform.consumed_j <= harvested + 1e-12

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_ledger_conservation_on_random_traces(self, seed):
        """persistent + volatile + lost == executed, whatever happens."""
        rng = np.random.default_rng(seed)
        samples = rng.uniform(0.0, 400e-6, size=2_000)
        trace = PowerTrace(samples, 1e-4, source="fuzz")
        cap = Capacitor(100e-9, v_max_v=3.3)
        platform = NVPPlatform(AbstractWorkload(), cap, NVPConfig(), seed=seed)
        for p in trace.samples_w:
            platform.tick(float(p), trace.dt_s)
        ledger = platform.ledger
        assert (
            ledger.persistent + ledger.volatile + ledger.lost
            == ledger.total_executed
        )
        assert platform.storage.energy_j >= 0.0
