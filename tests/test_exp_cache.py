"""Tests for the content-addressed result cache."""

import json
import os

import pytest

from repro.exp.cache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    ResultCache,
    default_cache_dir,
)

KEY = "a" * 64


class TestDefaultDir:
    def test_env_var_overrides(self, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, "/tmp/elsewhere")
        assert default_cache_dir() == "/tmp/elsewhere"

    def test_falls_back_to_dot_dir(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert default_cache_dir() == DEFAULT_CACHE_DIR

    def test_cache_picks_up_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "via-env"))
        cache = ResultCache()
        cache.put(KEY, {"result": 1})
        assert (tmp_path / "via-env").exists()


class TestRoundtrip:
    def test_get_miss_returns_none(self, tmp_path):
        assert ResultCache(str(tmp_path)).get(KEY) is None

    def test_put_then_get(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(KEY, {"result": {"forward_progress": 5}, "wall_s": 0.25})
        entry = cache.get(KEY)
        assert entry["result"] == {"forward_progress": 5}
        assert entry["wall_s"] == 0.25
        assert entry["key"] == KEY
        assert entry["code_version"] == cache.version

    def test_contains_len_keys(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert KEY not in cache
        cache.put(KEY, {"result": 1})
        cache.put("b" * 64, {"result": 2})
        assert KEY in cache
        assert len(cache) == 2
        assert cache.keys() == sorted([KEY, "b" * 64])

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(KEY, {"result": 1})
        with open(cache.path(KEY), "w") as handle:
            handle.write("{torn write")
        assert cache.get(KEY) is None

    def test_entries_are_pretty_json(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        path = cache.put(KEY, {"result": 1})
        with open(path) as handle:
            assert json.load(handle)["result"] == 1


class TestVersionNamespace:
    def test_versions_do_not_share_entries(self, tmp_path):
        old = ResultCache(str(tmp_path), version="1.0.0")
        new = ResultCache(str(tmp_path), version="2.0.0")
        old.put(KEY, {"result": "old-physics"})
        assert new.get(KEY) is None
        new.put(KEY, {"result": "new-physics"})
        assert old.get(KEY)["result"] == "old-physics"
        assert new.get(KEY)["result"] == "new-physics"

    def test_default_version_is_package_version(self, tmp_path):
        import repro

        assert ResultCache(str(tmp_path)).version == repro.__version__

    def test_clear_only_touches_own_version(self, tmp_path):
        old = ResultCache(str(tmp_path), version="1.0.0")
        new = ResultCache(str(tmp_path), version="2.0.0")
        old.put(KEY, {"result": 1})
        new.put(KEY, {"result": 2})
        assert new.clear() == 1
        assert new.get(KEY) is None
        assert old.get(KEY)["result"] == 1


class TestKeys:
    @pytest.mark.parametrize("bad", ["", "../escape", "a/b", ".hidden"])
    def test_invalid_keys_rejected(self, tmp_path, bad):
        with pytest.raises(ValueError):
            ResultCache(str(tmp_path)).path(bad)

    def test_no_tmp_files_left_behind(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(KEY, {"result": 1})
        names = os.listdir(cache.directory)
        assert names == [f"{KEY}.json"]
