"""Shared fixtures for the nvpsim test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.harvest.sources import square_trace, wristwatch_trace
from repro.isa.energy import EnergyModel
from repro.workloads.base import AbstractWorkload


@pytest.fixture(autouse=True)
def _ledger_tmp(tmp_path, monkeypatch):
    """Keep run-ledger writes out of the repo's .repro-cache.

    Tests exercising the REPRO_LEDGER_DIR switch override this with
    their own monkeypatch.
    """
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for stochastic components."""
    return np.random.default_rng(1234)


@pytest.fixture
def energy_model() -> EnergyModel:
    """Default 1 MHz energy model."""
    return EnergyModel()


@pytest.fixture
def short_square_trace():
    """1 s deterministic on/off supply: 500 µW for 20 ms, 0 for 80 ms."""
    return square_trace(
        high_w=500e-6, low_w=0.0, period_s=0.1, duty=0.2, duration_s=1.0
    )


@pytest.fixture
def short_watch_trace():
    """2 s wristwatch trace (deterministic seed)."""
    return wristwatch_trace(2.0, seed=99)


@pytest.fixture
def small_abstract_workload() -> AbstractWorkload:
    """Unbounded abstract workload with small units."""
    return AbstractWorkload(total_units=None, instructions_per_unit=1_000)
