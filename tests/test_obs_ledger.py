"""Tests for the run ledger: appends, queries, gc, diffing."""

import json
import os

import pytest

from repro.obs.ledger import (
    LEDGER_BASENAME,
    OUTCOMES,
    SCHEMA_VERSION,
    RunLedger,
    default_ledger_path,
    diff_records,
    format_diff,
    make_record,
    spec_fingerprint,
)


@pytest.fixture
def ledger(tmp_path):
    return RunLedger(str(tmp_path / "ledger.jsonl"))


def ok_record(**overrides):
    base = dict(
        command="sweep", outcome="ok", started_unix=100.0, ended_unix=101.5
    )
    base.update(overrides)
    return make_record(**base)


class TestRecordSchema:
    def test_stamped_fields(self):
        record = ok_record(experiment="exp", spec_hash="abcd")
        assert record["schema"] == SCHEMA_VERSION
        assert len(record["id"]) == 12
        assert record["wall_s"] == pytest.approx(1.5)
        assert record["pid"] == os.getpid()
        assert record["code_version"]
        assert record["experiment"] == "exp"

    def test_unique_ids(self):
        assert ok_record()["id"] != ok_record()["id"]

    def test_unknown_outcome_rejected(self):
        with pytest.raises(ValueError, match="unknown outcome"):
            make_record("sweep", "exploded", 0.0, 1.0)
        for outcome in OUTCOMES:
            assert make_record("x", outcome, 0.0, 1.0)["outcome"] == outcome

    def test_optional_blocks_only_when_given(self):
        bare = ok_record()
        assert "points" not in bare and "runs" not in bare
        full = ok_record(
            points={"total": 2}, cache={"hits": 1},
            resources={"cpu_s": 0.5}, runs=[{"key": "k"}], error="boom",
        )
        assert full["points"] == {"total": 2}
        assert full["error"] == "boom"

    def test_spec_fingerprint_is_order_sensitive(self):
        assert spec_fingerprint(["a", "b"]) != spec_fingerprint(["b", "a"])
        assert len(spec_fingerprint(["a"])) == 16


class TestAppendAndRead:
    def test_roundtrip(self, ledger):
        appended = ledger.append(ok_record())
        (read,) = ledger.records()
        assert read == appended

    def test_missing_file_reads_empty(self, ledger):
        assert ledger.records() == []
        assert len(ledger) == 0

    def test_appends_accumulate_in_order(self, ledger):
        ids = [ledger.append(ok_record())["id"] for _ in range(5)]
        assert [r["id"] for r in ledger.records()] == ids

    def test_torn_trailing_line_skipped(self, ledger):
        ledger.append(ok_record())
        with open(ledger.path, "a") as handle:
            handle.write('{"command": "sweep", "truncat')
        assert len(ledger.records()) == 1

    def test_garbage_lines_skipped(self, ledger):
        ledger.append(ok_record())
        with open(ledger.path, "a") as handle:
            handle.write("\n[1, 2]\nnot json\n")
        ledger.append(ok_record())
        assert len(ledger.records()) == 2

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError, match="ledger path"):
            RunLedger("")


class TestEnvConfiguration:
    def test_default_colocates_with_cache(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        assert default_ledger_path() == str(
            tmp_path / "c" / LEDGER_BASENAME
        )

    def test_env_relocates(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "elsewhere"))
        assert default_ledger_path() == str(
            tmp_path / "elsewhere" / LEDGER_BASENAME
        )

    def test_empty_env_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", "")
        assert default_ledger_path() is None
        assert RunLedger.from_env() is None

    def test_from_env_enabled(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path))
        ledger = RunLedger.from_env()
        ledger.append(ok_record())
        assert os.path.exists(tmp_path / LEDGER_BASENAME)


class TestQueries:
    def test_filters(self, ledger):
        ledger.append(ok_record(command="sweep", experiment="a",
                                spec_hash="1111aaaa"))
        ledger.append(ok_record(command="simulate", experiment=None,
                                started_unix=200.0, ended_unix=201.0))
        ledger.append(make_record("sweep", "error", 300.0, 301.0,
                                  experiment="b", spec_hash="2222bbbb"))
        assert len(ledger.records(command="sweep")) == 2
        assert len(ledger.records(experiment="a")) == 1
        assert len(ledger.records(outcome="error")) == 1
        assert len(ledger.records(spec="2222")) == 1
        assert len(ledger.records(since=150.0)) == 2
        assert len(ledger.records(until=250.0)) == 2
        assert len(ledger.records(since=200.0, until=200.0)) == 1

    def test_find_by_prefix(self, ledger):
        record = ledger.append(ok_record())
        assert ledger.find(record["id"][:4])["id"] == record["id"]

    def test_find_missing_and_empty(self, ledger):
        ledger.append(ok_record())
        with pytest.raises(KeyError):
            ledger.find("zzzz")
        with pytest.raises(KeyError):
            ledger.find("")

    def test_find_ambiguous_prefix(self, ledger):
        first, second = ok_record(), ok_record()
        first["id"] = "aaaa11111111"
        second["id"] = "aaaa22222222"
        ledger.append(first)
        ledger.append(second)
        with pytest.raises(ValueError, match="ambiguous"):
            ledger.find("aaaa")
        assert ledger.find("aaaa1")["id"] == first["id"]


class TestGc:
    def _sweep_rec(self, keys, version="1.0.0"):
        record = ok_record(runs=[{"key": key} for key in keys])
        record["code_version"] = version
        return record

    def test_prunes_fully_evicted_records(self, ledger, tmp_path):
        cache_root = tmp_path / "cache"
        alive_dir = cache_root / "1.0.0"
        alive_dir.mkdir(parents=True)
        (alive_dir / "alive.json").write_text("{}")
        ledger.append(self._sweep_rec(["alive", "gone"]))   # one key left
        ledger.append(self._sweep_rec(["gone1", "gone2"]))  # all evicted
        ledger.append(ok_record())                          # no runs: kept
        kept, pruned = ledger.gc(cache_root=str(cache_root))
        assert (kept, pruned) == (2, 1)
        assert len(ledger.records()) == 2

    def test_uncached_records_survive(self, ledger, tmp_path):
        # A run that never wrote the cache (repro compare) has keys
        # that were never on disk — absence is not eviction.
        record = self._sweep_rec(["never-cached"])
        record["uncached"] = True
        ledger.append(record)
        kept, pruned = ledger.gc(cache_root=str(tmp_path / "empty"))
        assert (kept, pruned) == (1, 0)

    def test_dry_run_touches_nothing(self, ledger, tmp_path):
        ledger.append(self._sweep_rec(["gone"]))
        kept, pruned = ledger.gc(
            cache_root=str(tmp_path / "empty"), dry_run=True
        )
        assert (kept, pruned) == (0, 1)
        assert len(ledger.records()) == 1

    def test_rewrite_is_atomic_replacement(self, ledger):
        ledger.append(ok_record())
        survivor = ok_record()
        ledger.rewrite([survivor])
        assert [r["id"] for r in ledger.records()] == [survivor["id"]]
        assert json.loads(open(ledger.path).read())  # single clean line


class TestDiff:
    def _pair(self):
        a = ok_record(
            spec_hash="same", points={"total": 4, "executed": 4,
                                      "cached": 0, "failed": 0},
            cache={"hits": 0, "misses": 4, "hit_rate": 0.0},
            resources={"cpu_s": 2.0, "peak_rss_kb": 1000.0},
        )
        b = ok_record(
            spec_hash="same", points={"total": 4, "executed": 0,
                                      "cached": 4, "failed": 0},
            cache={"hits": 4, "misses": 0, "hit_rate": 1.0},
            resources={"cpu_s": 0.0, "peak_rss_kb": 0.0},
        )
        return a, b

    def test_structured_diff(self):
        a, b = self._pair()
        diff = diff_records(a, b)
        assert diff["same_spec"] is True
        assert diff["points"]["executed_delta"] == -4
        assert diff["cache"]["hits_delta"] == 4
        assert diff["cache"]["hit_rate"] == {"a": 0.0, "b": 1.0}
        assert diff["resources"]["cpu_s"]["delta"] == -2.0

    def test_different_spec_flagged(self):
        a, b = self._pair()
        b["spec_hash"] = "other"
        assert diff_records(a, b)["same_spec"] is False

    def test_format_diff_renders(self):
        a, b = self._pair()
        text = format_diff(diff_records(a, b))
        assert f"runs {a['id']} -> {b['id']}" in text
        assert "cache hit : 0% -> 100% (+4 hits)" in text
        assert "same spec" in text

    def test_diff_tolerates_sparse_records(self):
        bare_a, bare_b = ok_record(), ok_record()
        text = format_diff(diff_records(bare_a, bare_b))
        assert "ok -> ok" in text
