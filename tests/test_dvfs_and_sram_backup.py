"""Tests for the DVFS energy model and SRAM working-set backup."""

import pytest

from repro.core.backup import BackupController
from repro.core.config import NVPConfig
from repro.isa.energy import DEFAULT_FREQUENCY, EnergyModel, InstrClass, dvfs_model
from repro.nvm.retention import LogPolicy, UniformPolicy
from repro.nvm.technology import STT_MRAM


class TestDVFSModel:
    def test_reference_point_matches_default(self):
        model = dvfs_model(DEFAULT_FREQUENCY)
        assert model.vdd == pytest.approx(1.0)
        assert model.frequency_hz == DEFAULT_FREQUENCY

    def test_vdd_grows_with_frequency(self):
        slow = dvfs_model(0.25e6)
        fast = dvfs_model(8e6)
        assert slow.vdd < 1.0 < fast.vdd

    def test_dynamic_energy_grows_with_frequency(self):
        slow = dvfs_model(0.5e6)
        fast = dvfs_model(4e6)
        assert fast.instruction_energy(InstrClass.ALU) > slow.instruction_energy(
            InstrClass.ALU
        )

    def test_leakage_per_instruction_shrinks_with_frequency(self):
        """The countervailing force: at a fixed VDD, leakage per
        instruction falls as 1/f."""
        slow = EnergyModel(frequency_hz=0.25e6)
        fast = EnergyModel(frequency_hz=4e6)
        leak_slow = slow.static_power_w * slow.instruction_time(InstrClass.ALU)
        leak_fast = fast.static_power_w * fast.instruction_time(InstrClass.ALU)
        assert leak_fast < leak_slow

    def test_energy_per_instruction_has_interior_minimum(self):
        """DVFS + leakage create an optimal operating point."""
        freqs = [0.0625e6, 0.25e6, 1e6, 4e6, 16e6]
        energies = [
            dvfs_model(f).instruction_energy(InstrClass.ALU) for f in freqs
        ]
        best = energies.index(min(energies))
        assert 0 < best < len(freqs) - 1

    def test_validation(self):
        with pytest.raises(ValueError):
            dvfs_model(0.0)
        with pytest.raises(ValueError):
            dvfs_model(1e6, f_ref_hz=0.0)


class TestSRAMBackup:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            NVPConfig(sram_backup_words=-1)

    def test_backup_energy_includes_working_set(self):
        bare = BackupController(NVPConfig(), data_words=8)
        loaded = BackupController(
            NVPConfig(sram_backup_words=1024), data_words=8
        )
        assert (
            loaded.worst_case_backup_energy_j()
            > 10 * bare.worst_case_backup_energy_j()
        )
        assert loaded.total_backup_bits == bare.total_backup_bits + 1024 * 16

    def test_backup_time_includes_working_set(self):
        bare = BackupController(NVPConfig(), data_words=8)
        loaded = BackupController(NVPConfig(sram_backup_words=1024), data_words=8)
        assert loaded.worst_case_backup_time_s() > bare.worst_case_backup_time_s()

    def test_restore_costs_include_working_set(self):
        bare = BackupController(NVPConfig(), data_words=8)
        loaded = BackupController(NVPConfig(sram_backup_words=1024), data_words=8)
        assert loaded.restore_energy_j() > bare.restore_energy_j()
        assert loaded.restore_time_s() > bare.restore_time_s()

    def test_plan_charges_sram_bits(self):
        controller = BackupController(
            NVPConfig(sram_backup_words=64), data_words=8
        )
        plan = controller.plan_backup([0] * 8)
        # control words + 8 register words + 64 sram words.
        assert plan.bits_written >= 64 * 16

    def test_commit_and_read_roundtrip_with_sram(self):
        controller = BackupController(
            NVPConfig(sram_backup_words=16), data_words=8
        )
        words = list(range(8))
        controller.backup(words)
        restored, _, _ = controller.read_image()
        assert restored == words  # only the register words come back

    def test_retention_policy_applies_to_sram_words(self):
        precise = BackupController(
            NVPConfig(technology=STT_MRAM, sram_backup_words=256),
            data_words=8,
        )
        relaxed = BackupController(
            NVPConfig(
                technology=STT_MRAM,
                retention_policy=LogPolicy(1e-3, STT_MRAM.retention_s),
                sram_backup_words=256,
            ),
            data_words=8,
        )
        saving = 1 - (
            relaxed.worst_case_backup_energy_j()
            / precise.worst_case_backup_energy_j()
        )
        # With the image dominated by relaxable words the system saving
        # approaches the device-level saving.
        assert saving > 0.3

    def test_sram_words_age_in_stats(self, rng):
        controller = BackupController(
            NVPConfig(
                technology=STT_MRAM,
                retention_policy=UniformPolicy(1e-3),
                sram_backup_words=128,
            ),
            data_words=8,
        )
        controller.backup([0] * 8)
        flips = controller.age(1.0, rng)  # outage >> retention
        assert flips > 0
