"""Integration tests: the observability layer wired through the stack."""

import json

import pytest

from repro.harvest.outage import (
    DEFAULT_THRESHOLD_W,
    OutageTracker,
    analyze_outages,
)
from repro.harvest.sources import square_trace, wristwatch_trace
from repro.obs import events as ev
from repro.obs.events import EventBus
from repro.obs.export import chrome_trace, load_chrome_trace, write_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.summary import LiveSummary
from repro.policy.dpm import EnergyBandGovernor
from repro.system.presets import build_nvp, standard_rectifier
from repro.system.simulator import SystemSimulator
from repro.system.telemetry import STATE_CODES, Telemetry
from repro.workloads.base import AbstractWorkload


def run_instrumented(duration_s=1.0, seed=7, **sim_kwargs):
    bus = EventBus()
    log = bus.record()
    trace = wristwatch_trace(duration_s, seed=seed)
    result = SystemSimulator(
        trace,
        build_nvp(AbstractWorkload()),
        rectifier=standard_rectifier(),
        stop_when_finished=False,
        bus=bus,
        **sim_kwargs,
    ).run()
    return result, log, bus


class TestSimulatorEvents:
    def test_lifecycle_events_bracket_the_run(self):
        _, log, _ = run_instrumented()
        names = log.names()
        assert names[0] == ev.SIM_BEGIN
        assert names[-1] == ev.SIM_END

    def test_backup_restore_outage_events_present(self):
        result, log, _ = run_instrumented()
        counts = log.counts()
        assert counts[ev.BACKUP_COMMIT] == result.backups
        assert counts[ev.RESTORE_COMMIT] == result.restores
        assert counts[ev.OUTAGE_BEGIN] > 0
        assert counts[ev.WAKE] == counts[ev.RESTORE_COMMIT] + counts.get(
            "wake_cold", 0
        ) or counts[ev.WAKE] >= counts[ev.RESTORE_COMMIT]

    def test_event_counts_match_platform_counters(self):
        result, log, _ = run_instrumented()
        counts = log.counts()
        assert counts[ev.BACKUP_START] == result.backups + result.failed_backups
        assert (
            counts[ev.RESTORE_START]
            == result.restores + result.failed_restores
        )

    def test_state_transitions_start_from_off(self):
        _, log, _ = run_instrumented()
        transitions = log.filter(ev.STATE_TRANSITION)
        assert transitions[0].data["prev"] is None
        assert transitions[0].data["state"] == "off"

    def test_events_are_time_ordered(self):
        _, log, _ = run_instrumented()
        times = [event.t_s for event in log]
        assert times == sorted(times)

    def test_results_identical_with_and_without_bus(self):
        plain = SystemSimulator(
            wristwatch_trace(1.0, seed=7),
            build_nvp(AbstractWorkload()),
            rectifier=standard_rectifier(),
            stop_when_finished=False,
        ).run()
        observed, _, _ = run_instrumented(1.0, seed=7)
        assert observed.forward_progress == plain.forward_progress
        assert observed.backups == plain.backups
        assert observed.extras == plain.extras


class TestDisabledBusOverhead:
    def test_no_event_allocated_without_bus(self, monkeypatch):
        """A simulation without a bus must never construct an Event."""
        def explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("Event constructed without a bus")

        monkeypatch.setattr(ev, "Event", explode)
        result = SystemSimulator(
            wristwatch_trace(0.5, seed=3),
            build_nvp(AbstractWorkload()),
            rectifier=standard_rectifier(),
            stop_when_finished=False,
        ).run()
        assert result.forward_progress > 0

    def test_tick_events_skipped_without_tick_subscriber(self):
        _, log, _ = run_instrumented(0.2)
        # bus.record() subscribes to everything, so ticks are present...
        assert ev.TICK in log.counts()
        # ...but a bus with only named subscribers skips them.
        bus = EventBus()
        named = bus.record(names=(ev.BACKUP_COMMIT,))
        SystemSimulator(
            wristwatch_trace(0.2, seed=3),
            build_nvp(AbstractWorkload()),
            rectifier=standard_rectifier(),
            stop_when_finished=False,
            bus=bus,
        ).run()
        assert set(named.names()) == {ev.BACKUP_COMMIT}


class TestChromeTraceFromRealRun:
    def test_full_run_produces_valid_trace(self, tmp_path):
        _, log, _ = run_instrumented(1.0)
        path = str(tmp_path / "run.json")
        write_chrome_trace(log, path)
        trace = load_chrome_trace(path)
        names = {event["name"] for event in trace}
        assert "backup" in names
        assert "restore" in names
        assert "outage" in names
        phases = {event["ph"] for event in trace}
        assert {"X", "M"} <= phases

    def test_spans_cover_all_platform_states_seen(self):
        _, log, _ = run_instrumented(1.0)
        trace = chrome_trace(log)
        span_names = {
            e["name"] for e in trace if e.get("cat") == "state"
        }
        states = {
            event.data["state"] for event in log.filter(ev.STATE_TRANSITION)
        }
        assert span_names == states


class TestTelemetrySubscriberParity:
    def test_bus_telemetry_matches_legacy_recorder(self):
        trace = wristwatch_trace(1.0, seed=11)

        legacy = Telemetry()
        platform = build_nvp(AbstractWorkload())
        for index, p_raw in enumerate(trace.samples_w):
            p_in = standard_rectifier().output_power(float(p_raw))
            report = platform.tick(p_in, trace.dt_s)
            legacy.record(index * trace.dt_s, report, platform)

        via_bus = Telemetry()
        SystemSimulator(
            wristwatch_trace(1.0, seed=11),
            build_nvp(AbstractWorkload()),
            rectifier=standard_rectifier(),
            stop_when_finished=False,
            telemetry=via_bus,
        ).run()

        assert via_bus.states == legacy.states
        assert via_bus.instructions == legacy.instructions
        assert via_bus.times_s == legacy.times_s
        assert via_bus.energies_j == pytest.approx(legacy.energies_j)

    def test_decimation_still_honoured(self):
        telemetry = Telemetry(decimation=10)
        SystemSimulator(
            wristwatch_trace(0.5, seed=3),
            build_nvp(AbstractWorkload()),
            rectifier=standard_rectifier(),
            stop_when_finished=False,
            telemetry=telemetry,
        ).run()
        assert 0 < len(telemetry) <= 500 / 10 * 10  # 5000 ticks / 10


class TestChargeStateCode:
    def test_charge_and_off_are_distinct(self):
        assert STATE_CODES["charge"] != STATE_CODES["off"]

    def test_strip_renders_charge_glyph(self):
        from repro.system.presets import build_wait_compute

        telemetry = Telemetry()
        trace = square_trace(800e-6, 0.0, 0.05, 0.5, duration_s=2.0)
        SystemSimulator(
            trace,
            build_wait_compute(AbstractWorkload()),
            stop_when_finished=False,
            telemetry=telemetry,
        ).run()
        assert STATE_CODES["charge"] in telemetry.states
        strip = telemetry.render_strip(60)
        assert "~" in strip
        assert "~ charge" in strip

    def test_duty_cycle_ignores_charging(self):
        telemetry = Telemetry()
        telemetry._sample(0.0, "charge", 0.0, 0)
        telemetry._sample(1.0, "run", 0.0, 5)
        assert telemetry.duty_cycle() == 0.5


class TestOutageTrackerParity:
    def test_tracker_matches_batch_analysis(self):
        trace = wristwatch_trace(1.0, seed=5)
        stats = analyze_outages(trace, DEFAULT_THRESHOLD_W)
        bus = EventBus()
        log = bus.record()
        tracker = OutageTracker(DEFAULT_THRESHOLD_W, bus)
        for index, p_w in enumerate(trace.samples_w):
            tracker.update(float(p_w), index * trace.dt_s)
        tracker.finish(len(trace.samples_w) * trace.dt_s)
        assert tracker.count == stats.count
        assert len(log.filter(ev.OUTAGE_BEGIN)) == stats.count
        durations = [
            event.data["duration_s"] for event in log.filter(ev.OUTAGE_END)
        ]
        assert durations == pytest.approx(list(stats.durations_s))


class TestLiveSummary:
    def test_summary_statistics(self):
        bus = EventBus()
        summary = LiveSummary().attach(bus)
        SystemSimulator(
            wristwatch_trace(1.0, seed=7),
            build_nvp(AbstractWorkload()),
            rectifier=standard_rectifier(),
            stop_when_finished=False,
            bus=bus,
        ).run()
        assert 0 < summary.duty_cycle < 1
        assert summary.backup_success_rate == 1.0
        assert summary.outages > 0
        rendered = summary.render()
        assert "duty cycle" in rendered
        assert "backup success" in rendered

    def test_progress_lines_at_interval(self, capsys):
        bus = EventBus()
        LiveSummary(interval_s=0.25).attach(bus)
        SystemSimulator(
            wristwatch_trace(1.0, seed=7),
            build_nvp(AbstractWorkload()),
            rectifier=standard_rectifier(),
            stop_when_finished=False,
            bus=bus,
        ).run()
        lines = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("[")
        ]
        assert len(lines) == 3  # 0.25, 0.5, 0.75 (1.0 never reached)


class TestPolicyEvents:
    def test_energy_band_governor_emits_on_state_change(self):
        bus = EventBus()
        log = bus.record()
        platform = build_nvp(AbstractWorkload())
        platform.governor = EnergyBandGovernor.for_capacitor(
            platform.storage, bus=bus
        )
        SystemSimulator(
            wristwatch_trace(1.0, seed=7),
            build_nvp(AbstractWorkload()),
            rectifier=standard_rectifier(),
            stop_when_finished=False,
            bus=bus,
        ).run()
        del platform  # governor not attached to the simulated platform
        # Drive the governor directly to verify decision events.
        from repro.system.thresholds import plan_thresholds

        plan = plan_thresholds(1e-9, 1e-9, 100e-6, 1e-4)
        governor = EnergyBandGovernor(1e-6, 2e-6, bus=bus)
        governor(5e-7, plan, 1e-4)   # below band -> throttle decision
        governor(4e-7, plan, 1e-4)   # still below -> no new event
        governor(3e-6, plan, 1e-4)   # back in band -> full-speed decision
        decisions = [
            event.data for event in log.filter(ev.POLICY_DECISION)
            if event.data.get("policy") == "energy-band"
        ]
        assert [d["action"] for d in decisions] == ["throttle", "full-speed"]

    def test_threshold_recompute_event(self):
        _, log, _ = run_instrumented(0.2)
        recomputes = log.filter(ev.THRESHOLD_RECOMPUTE)
        assert len(recomputes) >= 1
        data = recomputes[0].data
        assert data["start_threshold_j"] >= data["backup_threshold_j"]


class TestSimulatorMetrics:
    def test_aggregates_published(self):
        registry = MetricsRegistry()
        result, _, _ = run_instrumented(0.5, metrics=registry)
        snapshot = registry.snapshot()
        ops = snapshot["sim_operations"]
        # Series keys render labels in sorted-name order (byte-stable
        # exposition), not declaration order.
        assert ops["op=backups,platform=nvp|value"] == result.backups
        state = snapshot["sim_state_seconds"]
        run_key = "platform=nvp,state=run|value"
        assert state[run_key] == pytest.approx(result.state_time_s["run"])

    def test_storage_gauges_bound(self):
        registry = MetricsRegistry()
        run_instrumented(0.2, metrics=registry)
        snapshot = registry.snapshot()
        assert "storage_energy_j" in snapshot
        assert "storage_charged_total_j" in snapshot


class TestProfilerMetrics:
    def test_profile_entry_is_indexed_and_attributed(self):
        from repro.analysis.profiler import profile_program
        from repro.workloads.suite import build_kernel

        build = build_kernel("crc")
        registry = MetricsRegistry()
        profile = profile_program(
            build.program, metrics=registry, label="crc"
        )
        entry = profile.entry("bitloop")
        assert entry.instructions > 0
        with pytest.raises(KeyError):
            profile.entry("nonexistent")
        snapshot = registry.snapshot()
        key = "label=bitloop,program=crc|value"  # sorted label names
        assert snapshot["profile_instructions"][key] == entry.instructions
        assert "profile_class_instructions" in snapshot


class TestCliObservability:
    def test_simulate_writes_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = str(tmp_path / "t.json")
        metrics_path = str(tmp_path / "m.csv")
        manifest_path = str(tmp_path / "r.json")
        assert main([
            "simulate", "--duration", "1", "--seed", "2",
            "--trace", trace_path, "--metrics", metrics_path,
            "--manifest", manifest_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "trace events" in out
        trace = load_chrome_trace(trace_path)
        assert any(e["name"] == "backup" for e in trace)
        assert json.load(open(manifest_path))["command"] == "simulate"

    def test_observe_renders_summary(self, capsys):
        from repro.cli import main

        assert main(["observe", "--duration", "1", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "duty cycle" in out
        assert "backup success" in out
        assert "event counts" in out

    def test_observe_interval_progress(self, capsys):
        from repro.cli import main

        assert main([
            "observe", "--duration", "1", "--seed", "2",
            "--interval", "0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("[") >= 1

    def test_simulate_json_stays_clean_with_exports(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "simulate", "--duration", "1", "--json",
            "--trace", str(tmp_path / "t.json"),
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["label"] == "nvp"
        assert (tmp_path / "t.json").exists()
