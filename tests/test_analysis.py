"""Tests for the sweep harness and report rendering."""

import pytest

from repro.analysis.report import format_table, ratio, series_text
from repro.analysis.sweep import ensemble_run, parameter_sweep
from repro.harvest.sources import constant_trace, wristwatch_trace
from repro.system.presets import build_oracle
from repro.workloads.base import AbstractWorkload


class TestParameterSweep:
    def test_one_result_per_value(self):
        def factory(units):
            workload = AbstractWorkload(total_units=units, instructions_per_unit=100)
            return constant_trace(1e-6, 1.0), build_oracle(workload)

        results = parameter_sweep([1, 2, 3], factory)
        assert [value for value, _ in results] == [1, 2, 3]
        assert [r.units_completed for _, r in results] == [1, 2, 3]

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            parameter_sweep([], lambda v: None)

    def test_generator_values_accepted(self):
        def factory(units):
            workload = AbstractWorkload(total_units=units, instructions_per_unit=100)
            return constant_trace(1e-6, 1.0), build_oracle(workload)

        results = parameter_sweep((u for u in (1, 2)), factory)
        assert [value for value, _ in results] == [1, 2]

    def test_empty_generator_rejected(self):
        with pytest.raises(ValueError):
            parameter_sweep((v for v in ()), lambda v: None)


class TestEnsembleRun:
    def test_runs_all_traces(self):
        traces = [wristwatch_trace(0.2, seed=s) for s in range(3)]
        results = ensemble_run(
            traces,
            lambda trace: build_oracle(AbstractWorkload()),
            stop_when_finished=False,
        )
        assert len(results) == 3
        assert all(r.forward_progress > 0 for r in results)

    def test_empty_traces_rejected(self):
        with pytest.raises(ValueError):
            ensemble_run([], lambda t: None)


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "longer" in lines[3]

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_float_formatting(self):
        text = format_table(["x"], [[1.23456789]])
        assert "1.235" in text

    def test_ratio(self):
        assert ratio(10, 5) == 2.0
        assert ratio(10, 0) == 0.0

    def test_series_text(self):
        text = series_text("fp", [1, 2], [10.0, 20.0], unit="inst")
        assert "series: fp" in text
        assert "1: 10 inst" in text

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            series_text("x", [1], [1, 2])
