"""Run-length event synthesis: fast-path event streams vs. exact.

The fast-forward engine no longer goes dark: with any non-per-tick
subscription the simulator keeps the fast path and *synthesizes* the
event stream from run lengths (:mod:`repro.obs.synth`).  These tests
hold that stream to bitwise equality with the exact engine —
``(name, t_s, seq, data)`` tuple for tuple — property-style across
every platform preset and randomized solar/RF/wristwatch traces, and
pin down the subscription-sensitive engine selection rule: only a
``sim.tick`` subscriber forces exact ticking.
"""

import pytest

from repro.harvest.sources import (
    hybrid_trace,
    rf_trace,
    solar_trace,
    square_trace,
    wristwatch_trace,
)
from repro.obs import events as ev
from repro.obs.events import EventBus
from repro.system.presets import (
    build_checkpoint,
    build_nvp,
    build_oracle,
    build_wait_compute,
    standard_rectifier,
)
from repro.system.simulator import SystemSimulator
from repro.workloads.base import AbstractWorkload

PLATFORM_BUILDERS = {
    "nvp": build_nvp,
    "wait": build_wait_compute,
    "checkpoint": build_checkpoint,
    "oracle": build_oracle,
}

TRACE_MAKERS = {
    "square_outage": lambda seed: square_trace(400e-6, 0.0, 2.0, 0.08, 3.0),
    "wristwatch": lambda seed: wristwatch_trace(2.0, seed=seed),
    "solar": lambda seed: solar_trace(2.0, mean_power_w=60e-6, seed=seed),
    "rf": lambda seed: rf_trace(2.0, seed=seed),
    "hybrid": lambda seed: hybrid_trace(2.0, seed=seed),
}


def observed_run(builder, trace, use_fast_forward, sample_stride=0,
                 names=ev.NON_TICK_EVENT_NAMES):
    """One simulation with a recording bus; returns (result, log, sim)."""
    bus = EventBus()
    log = bus.record(names=names)
    simulator = SystemSimulator(
        trace,
        builder(AbstractWorkload()),
        rectifier=standard_rectifier(),
        bus=bus,
        sample_stride=sample_stride,
        use_fast_forward=use_fast_forward,
    )
    return simulator.run(), log, simulator


def stream(log):
    """The recorded stream as comparable (name, t_s, seq, data) tuples."""
    return [(e.name, e.t_s, e.seq, e.data) for e in log]


def assert_streams_identical(fast_log, slow_log):
    fast, slow = stream(fast_log), stream(slow_log)
    for index, (got, want) in enumerate(zip(fast, slow)):
        assert got == want, (
            f"event {index}: fast={got!r} != exact={want!r}"
        )
    assert len(fast) == len(slow), (
        f"fast emitted {len(fast)} events, exact {len(slow)}"
    )


class TestStreamEquivalence:
    @pytest.mark.parametrize("platform", sorted(PLATFORM_BUILDERS))
    @pytest.mark.parametrize("trace_kind", sorted(TRACE_MAKERS))
    @pytest.mark.parametrize("seed", [1, 17])
    def test_bitwise_identical_event_stream(self, platform, trace_kind, seed):
        trace = TRACE_MAKERS[trace_kind](seed)
        builder = PLATFORM_BUILDERS[platform]
        fast_result, fast_log, fast_sim = observed_run(builder, trace, None)
        slow_result, slow_log, _ = observed_run(builder, trace, False)
        if platform != "oracle":
            assert fast_sim.ticks_fast_forwarded > 0, (
                "non-TICK subscription must not force the exact engine"
            )
        assert_streams_identical(fast_log, slow_log)
        assert fast_result.to_dict() == slow_result.to_dict()

    @pytest.mark.parametrize("stride", [1, 7, 1000])
    def test_sample_stream_identical(self, stride):
        trace = square_trace(400e-6, 0.0, 2.0, 0.08, 2.0)
        _, fast_log, fast_sim = observed_run(
            build_nvp, trace, None, sample_stride=stride
        )
        _, slow_log, _ = observed_run(
            build_nvp, trace, False, sample_stride=stride
        )
        assert fast_sim.ticks_fast_forwarded > 0
        assert_streams_identical(fast_log, slow_log)
        samples = [e for e in fast_log if e.name == ev.SAMPLE]
        assert len(samples) == (len(trace) + stride - 1) // stride
        for event in samples:
            assert event.data["tick"] % stride == 0
            assert event.data["state"]

    def test_outage_stream_matches_threshold_crossings(self):
        trace = square_trace(400e-6, 0.0, 2.0, 0.08, 2.0)
        _, log, sim = observed_run(build_nvp, trace, None)
        assert sim.ticks_fast_forwarded > 0
        begins = [e for e in log if e.name == ev.OUTAGE_BEGIN]
        ends = [e for e in log if e.name == ev.OUTAGE_END]
        assert begins, "outage-heavy square wave must produce outages"
        assert len(begins) - len(ends) in (0, 1)
        for end in ends:
            assert end.data["duration_s"] > 0

    def test_sim_begin_and_end_frame_the_stream(self):
        trace = wristwatch_trace(1.0, seed=3)
        _, log, _ = observed_run(build_nvp, trace, None)
        events = list(log)
        assert events[0].name == ev.SIM_BEGIN
        assert events[-1].name == ev.SIM_END


class TestEngineSelection:
    def test_non_tick_subscriber_keeps_fast_path(self):
        trace = square_trace(400e-6, 0.0, 2.0, 0.08, 2.0)
        _, _, sim = observed_run(build_nvp, trace, None)
        plain_sim = SystemSimulator(
            trace,
            build_nvp(AbstractWorkload()),
            rectifier=standard_rectifier(),
        )
        plain_sim.run()
        assert sim.ticks_fast_forwarded == plain_sim.ticks_fast_forwarded > 0

    def test_tick_subscriber_forces_exact(self):
        trace = square_trace(400e-6, 0.0, 2.0, 0.08, 1.0)
        _, _, sim = observed_run(build_nvp, trace, None,
                                 names=(ev.TICK, ev.SIM_END))
        assert sim.ticks_fast_forwarded == 0
        assert sim.ticks_exact == len(trace)

    def test_subscribe_all_forces_exact(self):
        trace = square_trace(400e-6, 0.0, 2.0, 0.08, 1.0)
        bus = EventBus()
        bus.subscribe(lambda event: None)
        simulator = SystemSimulator(
            trace,
            build_nvp(AbstractWorkload()),
            rectifier=standard_rectifier(),
            bus=bus,
        )
        simulator.run()
        assert simulator.ticks_fast_forwarded == 0

    def test_sample_stride_validated(self):
        trace = wristwatch_trace(0.1, seed=1)
        with pytest.raises(ValueError):
            SystemSimulator(
                trace,
                build_nvp(AbstractWorkload()),
                sample_stride=-1,
            )


class TestStagingApi:
    def test_staged_events_replay_with_original_stamps(self):
        bus = EventBus()
        log = bus.record(names=(ev.WAKE,))
        bus.set_clock(25, 1e-4)
        bus.begin_staging()
        bus.emit(ev.WAKE, latency_s=1e-6)
        assert len(log) == 0, "staged emits must not reach subscribers yet"
        staged = bus.end_staging()
        assert [(s.name, s.tick, s.t_s) for s in staged] == [
            (ev.WAKE, 25, 25 * 1e-4)
        ]

    def test_unsubscribed_emits_are_never_staged(self):
        bus = EventBus()
        bus.record(names=(ev.SIM_END,))
        bus.begin_staging()
        bus.emit(ev.WAKE, latency_s=1e-6)
        assert bus.end_staging() == []

    def test_double_begin_raises(self):
        bus = EventBus()
        bus.begin_staging()
        with pytest.raises(RuntimeError):
            bus.begin_staging()

    def test_end_without_begin_raises(self):
        with pytest.raises(RuntimeError):
            EventBus().end_staging()

    def test_seq_not_consumed_while_staged(self):
        """Staged emits must not burn sequence numbers until replayed."""
        bus = EventBus()
        log = bus.record(names=(ev.WAKE, ev.SIM_END))
        bus.begin_staging()
        bus.emit(ev.WAKE, latency_s=1e-6)
        bus.end_staging()
        bus.emit(ev.SIM_END, t_s=0.0)
        # Sequence numbers start at 1; the staged WAKE consumed none.
        assert [e.seq for e in log] == [1]
