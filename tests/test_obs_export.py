"""Tests for the exporters (Chrome trace, JSONL, CSV) and run manifest."""

import csv
import json

import pytest

from repro.obs import events as ev
from repro.obs.events import EventBus
from repro.obs.export import (
    REQUIRED_TRACE_KEYS,
    chrome_trace,
    load_chrome_trace,
    read_events_jsonl,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_csv,
)
from repro.obs.manifest import RunManifest, git_revision
from repro.obs.metrics import MetricsRegistry


def make_log():
    """A hand-built event stream covering every exporter code path."""
    bus = EventBus()
    log = bus.record()
    bus.emit(ev.SIM_BEGIN, 0.0, label="nvp", ticks=100, dt_s=1e-4)
    bus.emit(ev.STATE_TRANSITION, 0.0, state="off", prev=None)
    bus.emit(ev.OUTAGE_BEGIN, 0.001, threshold_w=33e-6)
    bus.emit(ev.OUTAGE_END, 0.003, duration_s=0.002)
    bus.emit(ev.STATE_TRANSITION, 0.004, state="restore", prev="off")
    bus.emit(ev.RESTORE_START, 0.004, energy_j=1e-9)
    bus.emit(ev.RESTORE_COMMIT, 0.004, time_s=2e-6, flipped_bits=0)
    bus.emit(ev.WAKE, 0.004, cold=False)
    bus.emit(ev.STATE_TRANSITION, 0.005, state="run", prev="restore")
    for tick in range(5):
        bus.emit(ev.TICK, 0.005 + tick * 1e-4, state="run",
                 instructions=3, energy_j=1e-6)
    bus.emit(ev.BACKUP_START, 0.006, energy_j=2e-9, bits=168, time_s=3e-6)
    bus.emit(ev.BACKUP_COMMIT, 0.006, energy_j=2e-9, bits=168, time_s=3e-6)
    bus.emit(ev.STATE_TRANSITION, 0.007, state="off", prev="backup")
    bus.emit(ev.BACKUP_FAIL, 0.008, needed_j=2e-9, drawn_j=1e-9,
             lost_instructions=7)
    bus.emit(ev.SIM_END, 0.01, completed=False, ticks=100)
    return log


class TestChromeTrace:
    def test_schema_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.json")
        count = write_chrome_trace(make_log(), path)
        trace = load_chrome_trace(path)
        assert len(trace) == count
        for event in trace:
            for key in REQUIRED_TRACE_KEYS:
                if key == "ts" and event["ph"] == "M":
                    continue
                assert key in event

    def test_state_spans_are_duration_events(self):
        trace = chrome_trace(make_log())
        spans = [e for e in trace if e.get("cat") == "state" and e["ph"] == "X"]
        names = [span["name"] for span in spans]
        assert names == ["off", "restore", "run", "off"]
        for span in spans:
            assert span["dur"] >= 0

    def test_ops_pair_start_with_outcome(self):
        trace = chrome_trace(make_log())
        ops = [e for e in trace if e.get("cat") == "ops"]
        outcomes = {(op["name"], op["args"]["outcome"]) for op in ops}
        assert ("restore", "commit") in outcomes
        assert ("backup", "commit") in outcomes
        assert ("backup", "fail") in outcomes

    def test_outage_span_present_with_duration(self):
        trace = chrome_trace(make_log())
        outages = [e for e in trace if e["name"] == "outage"]
        assert len(outages) == 1
        assert outages[0]["dur"] == pytest.approx(2000.0)  # 2 ms in us

    def test_counter_events_decimated(self):
        dense = chrome_trace(make_log(), counter_decimation=1)
        sparse = chrome_trace(make_log(), counter_decimation=5)
        dense_counters = [e for e in dense if e["ph"] == "C"]
        sparse_counters = [e for e in sparse if e["ph"] == "C"]
        assert len(dense_counters) == 5
        assert len(sparse_counters) == 1

    def test_sim_time_maps_to_microseconds(self):
        trace = chrome_trace(make_log())
        outage = [e for e in trace if e["name"] == "outage"][0]
        assert outage["ts"] == pytest.approx(1000.0)  # 0.001 s -> 1000 us

    def test_thread_metadata_present(self):
        trace = chrome_trace(make_log())
        threads = [e for e in trace if e["name"] == "thread_name"]
        assert {t["args"]["name"] for t in threads} >= {
            "platform state", "backup/restore", "supply outages"
        }

    def test_invalid_decimation_rejected(self):
        with pytest.raises(ValueError):
            chrome_trace(make_log(), counter_decimation=0)

    def test_loader_rejects_missing_keys(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([{"name": "x", "ph": "i"}]))
        with pytest.raises(ValueError):
            load_chrome_trace(str(path))

    def test_loader_accepts_bare_array(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps(
            [{"name": "x", "ph": "i", "ts": 0, "pid": 0, "tid": 0}]
        ))
        assert len(load_chrome_trace(str(path))) == 1


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = make_log()
        count = write_events_jsonl(log, path)
        assert count == len(log)
        loaded = read_events_jsonl(path)
        assert loaded.names() == log.names()
        assert [e.t_s for e in loaded] == [e.t_s for e in log]
        assert loaded[2].data["threshold_w"] == pytest.approx(33e-6)

    def test_lines_are_valid_json(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events_jsonl(make_log(), str(path))
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert "name" in record and "t_s" in record and "seq" in record


class TestMetricsCsv:
    def test_csv_dump(self, tmp_path):
        registry = MetricsRegistry()
        counter = registry.counter("backups", labels=("platform",))
        counter.labels(platform="nvp").inc(3)
        registry.gauge("energy").set(1.5)
        path = str(tmp_path / "metrics.csv")
        count = write_metrics_csv(registry, path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["kind", "name", "labels", "field", "value"]
        assert len(rows) == count + 1
        data = {(r[1], r[2]): float(r[4]) for r in rows[1:]}
        assert data[("backups", "platform=nvp")] == 3.0
        assert data[("energy", "")] == 1.5


class TestManifest:
    def test_collect_and_write(self, tmp_path):
        manifest = RunManifest.collect(
            command="test", seed=7, config={"duration_s": 1.0}, note="hi"
        )
        manifest.finish()
        assert manifest.duration_s is not None and manifest.duration_s >= 0
        path = str(tmp_path / "manifest.json")
        manifest.write(path)
        loaded = RunManifest.read(path)
        assert loaded.command == "test"
        assert loaded.seed == 7
        assert loaded.config == {"duration_s": 1.0}
        assert loaded.extra == {"note": "hi"}
        assert loaded.python

    def test_git_revision_inside_repo(self):
        sha = git_revision()
        assert sha == "unknown" or len(sha) == 40

    def test_git_revision_outside_repo(self, tmp_path):
        assert git_revision(cwd=str(tmp_path)) == "unknown"


class TestPrometheusText:
    def make_registry(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter(
            "sim.backups", labels=("platform", "state"),
            help="completed backups",
        ).labels(state="run", platform="nvp").inc(3)
        registry.gauge("energy.level").set(0.5)
        hist = registry.histogram(
            "outage.len", buckets=(0.001, 0.01, float("inf"))
        )
        hist.observe(0.002)
        hist.observe(0.5)
        return registry

    def test_exposition_contents(self):
        from repro.obs.export import prometheus_text

        text = prometheus_text(self.make_registry())
        assert "# TYPE sim_backups counter" in text
        # Label names render sorted regardless of call order.
        assert 'sim_backups{platform="nvp",state="run"} 3' in text
        assert "energy_level 0.5" in text
        assert 'outage_len_bucket{le="0.001"} 0' in text
        assert 'outage_len_bucket{le="0.01"} 1' in text
        assert 'outage_len_bucket{le="+Inf"} 2' in text
        assert "outage_len_count 2" in text
        assert text.endswith("\n")

    def test_exposition_is_byte_stable(self):
        """Golden-file property: same contents, same bytes — even when
        labels and metrics are registered in a different order."""
        from repro.obs.export import prometheus_text
        from repro.obs.metrics import MetricsRegistry

        other = MetricsRegistry()
        hist = other.histogram(
            "outage.len", buckets=(0.001, 0.01, float("inf"))
        )
        hist.observe(0.5)
        hist.observe(0.002)
        other.gauge("energy.level").set(0.5)
        other.counter(
            "sim.backups", labels=("platform", "state"),
            help="completed backups",
        ).labels(platform="nvp", state="run").inc(3)
        assert prometheus_text(other) == prometheus_text(
            self.make_registry()
        )

    def test_prefix_and_name_mangling(self):
        from repro.obs.export import prometheus_text
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.gauge("fleet.watch.rate").set(1.0)
        text = prometheus_text(registry, prefix="repro.")
        assert "repro_fleet_watch_rate 1" in text

    def test_value_rendering(self):
        from repro.obs.export import _prom_value

        assert _prom_value(3.0) == "3"
        assert _prom_value(0.25) == "0.25"
        assert _prom_value(float("inf")) == "+Inf"
        assert _prom_value(float("-inf")) == "-Inf"
        assert _prom_value(float("nan")) == "NaN"

    def test_write_prometheus(self, tmp_path):
        from repro.obs.export import prometheus_text, write_prometheus

        registry = self.make_registry()
        path = tmp_path / "metrics.prom"
        n = write_prometheus(registry, str(path))
        assert path.read_text() == prometheus_text(registry)
        assert n == len(path.read_bytes())


class TestSnapshots:
    SNAP = {
        "tick": 100,
        "t_s": 0.01,
        "devices": {"total": 4, "final": 1},
        "outage": {"fraction": 0.5, "storm": True},
        "label": "ignored-string",
        "series": [1, 2, 3],
    }

    def test_flatten_is_sorted_and_numeric_only(self):
        from repro.obs.export import flatten_snapshot

        pairs = flatten_snapshot(self.SNAP)
        assert pairs == sorted(pairs)
        names = [name for name, _v in pairs]
        assert "devices_total" in names
        assert "outage_fraction" in names
        assert "label" not in names and "series" not in names
        flat = dict(pairs)
        assert flat["outage_storm"] == 1.0  # bools become 0/1

    def test_snapshot_prometheus_gauges(self):
        from repro.obs.export import snapshot_prometheus

        text = snapshot_prometheus(self.SNAP)
        assert "fleet_devices_total 4" in text
        assert "fleet_outage_storm 1" in text
        assert snapshot_prometheus(self.SNAP) == text  # stable

    def test_writer_roundtrip_with_prom_sibling(self, tmp_path):
        from repro.obs.export import (
            SnapshotWriter,
            read_snapshots,
            snapshot_prometheus,
        )

        path = tmp_path / "tel.jsonl"
        prom = tmp_path / "tel.jsonl.prom"
        with SnapshotWriter(str(path), prom_path=str(prom)) as writer:
            writer.append({"tick": 1, "x": 1.0})
            writer.append({"tick": 2, "x": 2.0})
            assert writer.count == 2
        snaps = read_snapshots(str(path))
        assert [s["tick"] for s in snaps] == [1, 2]
        # The .prom sibling always holds the latest snapshot only.
        assert prom.read_text() == snapshot_prometheus(
            {"tick": 2, "x": 2.0}
        )
        assert not (tmp_path / "tel.jsonl.prom.tmp").exists()

    def test_reader_skips_torn_lines(self, tmp_path):
        from repro.obs.export import read_snapshots

        path = tmp_path / "tel.jsonl"
        path.write_text('{"tick": 1}\n\n{"tick": 2}\n{"tick": 3, "x":\n')
        assert [s["tick"] for s in read_snapshots(str(path))] == [1, 2]

    def test_writer_appends_across_instances(self, tmp_path):
        from repro.obs.export import SnapshotWriter, read_snapshots

        path = tmp_path / "tel.jsonl"
        for tick in (1, 2):
            with SnapshotWriter(str(path)) as writer:
                writer.append({"tick": tick})
        assert [s["tick"] for s in read_snapshots(str(path))] == [1, 2]
