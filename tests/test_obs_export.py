"""Tests for the exporters (Chrome trace, JSONL, CSV) and run manifest."""

import csv
import json

import pytest

from repro.obs import events as ev
from repro.obs.events import EventBus
from repro.obs.export import (
    REQUIRED_TRACE_KEYS,
    chrome_trace,
    load_chrome_trace,
    read_events_jsonl,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_csv,
)
from repro.obs.manifest import RunManifest, git_revision
from repro.obs.metrics import MetricsRegistry


def make_log():
    """A hand-built event stream covering every exporter code path."""
    bus = EventBus()
    log = bus.record()
    bus.emit(ev.SIM_BEGIN, 0.0, label="nvp", ticks=100, dt_s=1e-4)
    bus.emit(ev.STATE_TRANSITION, 0.0, state="off", prev=None)
    bus.emit(ev.OUTAGE_BEGIN, 0.001, threshold_w=33e-6)
    bus.emit(ev.OUTAGE_END, 0.003, duration_s=0.002)
    bus.emit(ev.STATE_TRANSITION, 0.004, state="restore", prev="off")
    bus.emit(ev.RESTORE_START, 0.004, energy_j=1e-9)
    bus.emit(ev.RESTORE_COMMIT, 0.004, time_s=2e-6, flipped_bits=0)
    bus.emit(ev.WAKE, 0.004, cold=False)
    bus.emit(ev.STATE_TRANSITION, 0.005, state="run", prev="restore")
    for tick in range(5):
        bus.emit(ev.TICK, 0.005 + tick * 1e-4, state="run",
                 instructions=3, energy_j=1e-6)
    bus.emit(ev.BACKUP_START, 0.006, energy_j=2e-9, bits=168, time_s=3e-6)
    bus.emit(ev.BACKUP_COMMIT, 0.006, energy_j=2e-9, bits=168, time_s=3e-6)
    bus.emit(ev.STATE_TRANSITION, 0.007, state="off", prev="backup")
    bus.emit(ev.BACKUP_FAIL, 0.008, needed_j=2e-9, drawn_j=1e-9,
             lost_instructions=7)
    bus.emit(ev.SIM_END, 0.01, completed=False, ticks=100)
    return log


class TestChromeTrace:
    def test_schema_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.json")
        count = write_chrome_trace(make_log(), path)
        trace = load_chrome_trace(path)
        assert len(trace) == count
        for event in trace:
            for key in REQUIRED_TRACE_KEYS:
                if key == "ts" and event["ph"] == "M":
                    continue
                assert key in event

    def test_state_spans_are_duration_events(self):
        trace = chrome_trace(make_log())
        spans = [e for e in trace if e.get("cat") == "state" and e["ph"] == "X"]
        names = [span["name"] for span in spans]
        assert names == ["off", "restore", "run", "off"]
        for span in spans:
            assert span["dur"] >= 0

    def test_ops_pair_start_with_outcome(self):
        trace = chrome_trace(make_log())
        ops = [e for e in trace if e.get("cat") == "ops"]
        outcomes = {(op["name"], op["args"]["outcome"]) for op in ops}
        assert ("restore", "commit") in outcomes
        assert ("backup", "commit") in outcomes
        assert ("backup", "fail") in outcomes

    def test_outage_span_present_with_duration(self):
        trace = chrome_trace(make_log())
        outages = [e for e in trace if e["name"] == "outage"]
        assert len(outages) == 1
        assert outages[0]["dur"] == pytest.approx(2000.0)  # 2 ms in us

    def test_counter_events_decimated(self):
        dense = chrome_trace(make_log(), counter_decimation=1)
        sparse = chrome_trace(make_log(), counter_decimation=5)
        dense_counters = [e for e in dense if e["ph"] == "C"]
        sparse_counters = [e for e in sparse if e["ph"] == "C"]
        assert len(dense_counters) == 5
        assert len(sparse_counters) == 1

    def test_sim_time_maps_to_microseconds(self):
        trace = chrome_trace(make_log())
        outage = [e for e in trace if e["name"] == "outage"][0]
        assert outage["ts"] == pytest.approx(1000.0)  # 0.001 s -> 1000 us

    def test_thread_metadata_present(self):
        trace = chrome_trace(make_log())
        threads = [e for e in trace if e["name"] == "thread_name"]
        assert {t["args"]["name"] for t in threads} >= {
            "platform state", "backup/restore", "supply outages"
        }

    def test_invalid_decimation_rejected(self):
        with pytest.raises(ValueError):
            chrome_trace(make_log(), counter_decimation=0)

    def test_loader_rejects_missing_keys(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([{"name": "x", "ph": "i"}]))
        with pytest.raises(ValueError):
            load_chrome_trace(str(path))

    def test_loader_accepts_bare_array(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps(
            [{"name": "x", "ph": "i", "ts": 0, "pid": 0, "tid": 0}]
        ))
        assert len(load_chrome_trace(str(path))) == 1


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = make_log()
        count = write_events_jsonl(log, path)
        assert count == len(log)
        loaded = read_events_jsonl(path)
        assert loaded.names() == log.names()
        assert [e.t_s for e in loaded] == [e.t_s for e in log]
        assert loaded[2].data["threshold_w"] == pytest.approx(33e-6)

    def test_lines_are_valid_json(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events_jsonl(make_log(), str(path))
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert "name" in record and "t_s" in record and "seq" in record


class TestMetricsCsv:
    def test_csv_dump(self, tmp_path):
        registry = MetricsRegistry()
        counter = registry.counter("backups", labels=("platform",))
        counter.labels(platform="nvp").inc(3)
        registry.gauge("energy").set(1.5)
        path = str(tmp_path / "metrics.csv")
        count = write_metrics_csv(registry, path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["kind", "name", "labels", "field", "value"]
        assert len(rows) == count + 1
        data = {(r[1], r[2]): float(r[4]) for r in rows[1:]}
        assert data[("backups", "platform=nvp")] == 3.0
        assert data[("energy", "")] == 1.5


class TestManifest:
    def test_collect_and_write(self, tmp_path):
        manifest = RunManifest.collect(
            command="test", seed=7, config={"duration_s": 1.0}, note="hi"
        )
        manifest.finish()
        assert manifest.duration_s is not None and manifest.duration_s >= 0
        path = str(tmp_path / "manifest.json")
        manifest.write(path)
        loaded = RunManifest.read(path)
        assert loaded.command == "test"
        assert loaded.seed == 7
        assert loaded.config == {"duration_s": 1.0}
        assert loaded.extra == {"note": "hi"}
        assert loaded.python

    def test_git_revision_inside_repo(self):
        sha = git_revision()
        assert sha == "unknown" or len(sha) == 40

    def test_git_revision_outside_repo(self, tmp_path):
        assert git_revision(cwd=str(tmp_path)) == "unknown"
