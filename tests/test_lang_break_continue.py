"""break/continue: interpreter semantics and compiled cross-check."""

import pytest

from repro.isa.cpu import CPU
from repro.lang.codegen import CodegenError, compile_source
from repro.lang.interp import InterpError, interpret


def crosscheck(source):
    expected = interpret(source).outputs
    compiled = compile_source(source)
    cpu = CPU(compiled.program.instructions)
    cpu.memory.load_image(compiled.program.data_image)
    cpu.run(max_instructions=200_000)
    assert cpu.state.halted
    assert cpu.memory.output == expected
    return expected


class TestInterpreterSemantics:
    def test_break_leaves_while(self):
        source = """
        func main() {
            int i;
            i = 0;
            while (1) {
                if (i == 3) { break; }
                out(i);
                i = i + 1;
            }
            out(99);
        }
        """
        assert interpret(source).outputs == [0, 1, 2, 99]

    def test_continue_in_for_runs_step(self):
        source = """
        func main() {
            int i;
            for (i = 0; i < 5; i = i + 1) {
                if (i == 2) { continue; }
                out(i);
            }
        }
        """
        assert interpret(source).outputs == [0, 1, 3, 4]

    def test_break_only_innermost_loop(self):
        source = """
        func main() {
            int i; int j;
            for (i = 0; i < 3; i = i + 1) {
                for (j = 0; j < 10; j = j + 1) {
                    if (j == 1) { break; }
                    out(i * 10 + j);
                }
            }
        }
        """
        assert interpret(source).outputs == [0, 10, 20]

    def test_continue_in_while_rechecks_condition(self):
        source = """
        func main() {
            int i;
            i = 0;
            while (i < 5) {
                i = i + 1;
                if (i == 2) { continue; }
                out(i);
            }
        }
        """
        assert interpret(source).outputs == [1, 3, 4, 5]

    def test_break_outside_loop_is_error(self):
        with pytest.raises(InterpError, match="outside a loop"):
            interpret("func main() { break; }")

    def test_continue_outside_loop_is_error(self):
        with pytest.raises(InterpError, match="outside a loop"):
            interpret("func f() { continue; } func main() { f(); }")


class TestCompiledCrossCheck:
    def test_break_in_while(self):
        crosscheck("""
        func main() {
            int i; i = 0;
            while (1) { if (i == 4) { break; } out(i); i = i + 1; }
        }
        """)

    def test_continue_in_for(self):
        crosscheck("""
        func main() {
            int i;
            for (i = 0; i < 8; i = i + 1) {
                if (i % 2 == 0) { continue; }
                out(i);
            }
        }
        """)

    def test_nested_loops_with_both(self):
        crosscheck("""
        func main() {
            int i; int j;
            for (i = 0; i < 4; i = i + 1) {
                if (i == 1) { continue; }
                j = 0;
                while (j < 6) {
                    j = j + 1;
                    if (j == 2) { continue; }
                    if (j == 5) { break; }
                    out(i * 100 + j);
                }
            }
        }
        """)

    def test_linear_search_with_break(self):
        crosscheck("""
        int data[8] = {4, 9, 1, 7, 3, 8, 2, 6};
        func find(needle) {
            int i;
            for (i = 0; i < 8; i = i + 1) {
                if (data[i] == needle) { break; }
            }
            return i;
        }
        func main() { out(find(7)); out(find(4)); out(find(99)); }
        """)

    def test_break_outside_loop_rejected(self):
        with pytest.raises(CodegenError, match="outside a loop"):
            compile_source("func main() { break; }")

    def test_continue_in_called_function_rejected(self):
        with pytest.raises(CodegenError, match="outside a loop"):
            compile_source(
                "func f() { continue; }\n"
                "func main() { int i;"
                " for (i = 0; i < 2; i = i + 1) { f(); } }"
            )
