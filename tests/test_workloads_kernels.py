"""Correctness tests for every NV16 kernel against its reference."""

import numpy as np
import pytest

from repro.isa.cpu import CPU
from repro.workloads import crc, dft, fir, histogram, integral, matmul, median
from repro.workloads import rle, sobel, strsearch
from repro.workloads.images import test_bytes as make_bytes
from repro.workloads.images import test_image as make_image
from repro.workloads.images import test_signal as make_signal
from repro.workloads.suite import KERNELS, build_kernel

KERNEL_PARAMS = {
    "sobel": {"size": 12},
    "median": {"size": 8},
    "integral": {"size": 10},
    "crc": {"length": 48},
    "fir": {"length": 48},
    "histogram": {"length": 96},
    "rle": {"length": 96},
    "matmul": {"n": 4},
    "strsearch": {"length": 96},
    "dft": {"length": 16},
    "erode": {"size": 8},
    "dilate": {"size": 8},
}


def execute(build, max_instructions=5_000_000):
    cpu = CPU(build.program.instructions)
    cpu.memory.load_image(build.program.data_image)
    cpu.run(max_instructions=max_instructions)
    assert cpu.state.halted, f"{build.name} did not halt"
    return np.array(cpu.memory.output, dtype=np.uint16)


class TestAllKernelsBitExact:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_matches_reference(self, name):
        build = build_kernel(name, **KERNEL_PARAMS[name])
        outputs = execute(build)
        assert np.array_equal(outputs, build.expected_output), name

    @pytest.mark.parametrize("name", sorted(KERNELS))
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_reference_across_seeds(self, name, seed):
        build = build_kernel(name, seed=seed, **KERNEL_PARAMS[name])
        outputs = execute(build)
        assert np.array_equal(outputs, build.expected_output), (name, seed)


class TestSobel:
    def test_uniform_image_has_no_edges(self):
        flat = np.full((8, 8), 100, dtype=np.uint8)
        assert np.all(sobel.reference(flat) == 0)

    def test_vertical_edge_detected(self):
        img = np.zeros((8, 8), dtype=np.uint8)
        img[:, 4:] = 200
        edges = sobel.reference(img).reshape(6, 6)
        assert edges[:, 2].max() > 0 or edges[:, 3].max() > 0
        assert np.all(edges[:, 0] == 0)

    def test_output_clamped_to_255(self):
        img = make_image(8, kind="edges")
        assert sobel.reference(img).max() <= 255

    def test_rejects_tiny_images(self):
        with pytest.raises(ValueError):
            sobel.reference(np.zeros((2, 5)))
        with pytest.raises(ValueError):
            sobel.assembly(2, 5)


class TestMedian:
    def test_uniform_image_unchanged(self):
        flat = np.full((6, 6), 77, dtype=np.uint8)
        assert np.all(median.reference(flat) == 77)

    def test_removes_salt_noise(self):
        img = np.full((6, 6), 50, dtype=np.uint8)
        img[3, 3] = 255  # single salt pixel
        out = median.reference(img)
        assert np.all(out == 50)


class TestIntegral:
    def test_ones_image(self):
        img = np.ones((4, 4), dtype=np.uint8)
        table = integral.reference(img).reshape(4, 4)
        assert table[0, 0] == 1
        assert table[3, 3] == 16
        assert table[1, 1] == 4

    def test_wraps_mod_65536(self):
        img = np.full((32, 32), 255, dtype=np.uint8)
        table = integral.reference(img)
        assert table.max() < 65536


class TestCRC:
    def test_known_vector(self):
        """CRC-16/CCITT-FALSE of '123456789' is 0x29B1."""
        data = np.frombuffer(b"123456789", dtype=np.uint8)
        assert crc.crc16(data) == 0x29B1

    def test_empty_is_init(self):
        assert crc.crc16([]) == crc.INIT

    def test_sensitive_to_single_bit(self):
        a = make_bytes(32, seed=1)
        b = a.copy()
        b[5] ^= 1
        assert crc.crc16(a) != crc.crc16(b)


class TestFIR:
    def test_constant_signal_passthrough(self):
        """A DC signal through the (sum=52, >>6) filter attenuates to
        floor(52x/64)."""
        signal = np.full(32, 100, dtype=np.uint8)
        out = fir.reference(signal)
        assert np.all(out == (52 * 100) >> 6)

    def test_smooths_impulse(self):
        signal = np.zeros(32, dtype=np.uint8)
        signal[16] = 255
        out = fir.reference(signal)
        assert out.max() < 255  # spread and attenuated


class TestHistogram:
    def test_counts_sum_to_length(self):
        data = make_bytes(128, seed=2, runs=False)
        assert histogram.reference(data).sum() == 128

    def test_known_distribution(self):
        data = np.array([0, 15, 16, 255], dtype=np.uint8)
        counts = histogram.reference(data)
        assert counts[0] == 2
        assert counts[1] == 1
        assert counts[15] == 1


class TestRLE:
    def test_simple_runs(self):
        out = rle.reference(np.array([5, 5, 5, 9, 9], dtype=np.uint8))
        assert list(out) == [5, 3, 9, 2]

    def test_roundtrip_decode(self):
        data = make_bytes(64, seed=4)
        pairs = rle.reference(data).reshape(-1, 2)
        decoded = np.concatenate(
            [np.full(int(count), value) for value, count in pairs]
        )
        assert np.array_equal(decoded, data.astype(np.int64))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            rle.reference(np.array([], dtype=np.uint8))


class TestMatmul:
    def test_identity(self):
        eye = np.eye(4, dtype=np.int64)
        a = np.arange(16).reshape(4, 4) % 16
        assert np.array_equal(
            matmul.reference(a, eye), a.astype(np.uint16).ravel()
        )

    def test_asm_requires_power_of_two(self):
        with pytest.raises(ValueError):
            matmul.assembly(6)


class TestStrsearch:
    def test_counts_planted_patterns(self):
        buf = strsearch.make_haystack(256, plant=5, seed=11)
        assert strsearch.reference(buf)[0] >= 5

    def test_no_match(self):
        buf = np.zeros(64, dtype=np.uint8)
        assert strsearch.reference(buf)[0] == 0

    def test_overlapping_matches_counted(self):
        buf = np.array([1, 1, 1, 1, 1], dtype=np.uint8)
        assert strsearch.reference(buf, pattern=(1, 1, 1, 1))[0] == 2


class TestDFT:
    def test_dc_signal_energy_in_bin_zero(self):
        signal = np.full(16, 128, dtype=np.uint8)
        spectrum = dft.reference(signal)
        assert spectrum[0] == spectrum.max()
        assert spectrum[0] > 10 * (np.sort(spectrum)[-2] + 1)

    def test_single_tone_peaks_at_its_bin(self):
        n = 32
        t = np.arange(n)
        signal = (128 + 100 * np.cos(2 * np.pi * 4 * t / n)).astype(np.uint8)
        spectrum = dft.reference(signal).astype(float)
        # Exclude the DC bin; bins 4 and 28 (conjugate) must dominate.
        ac = spectrum.copy()
        ac[0] = 0
        assert set(np.argsort(ac)[-2:]) == {4, 28}

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            dft.reference(np.zeros(12, dtype=np.uint8))


class TestSyntheticInputs:
    def test_images_deterministic(self):
        assert np.array_equal(make_image(16, seed=3), make_image(16, seed=3))

    @pytest.mark.parametrize("kind", ["scene", "gradient", "noise", "edges"])
    def test_image_kinds_in_range(self, kind):
        img = make_image(16, kind=kind)
        assert img.dtype == np.uint8
        assert img.shape == (16, 16)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_image(16, kind="fractal")

    def test_signal_range(self):
        sig = make_signal(64)
        assert sig.min() >= 0 and sig.max() <= 255

    def test_bytes_run_structure(self):
        runs = make_bytes(256, seed=5, runs=True)
        random = make_bytes(256, seed=5, runs=False)
        def run_count(a):
            return 1 + int(np.sum(a[1:] != a[:-1]))
        assert run_count(runs) < run_count(random)
