"""Unit tests for the NV16 instruction encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.instructions import (
    IMM_MAX,
    IMM_MIN,
    Instruction,
    Opcode,
    decode,
    encode,
    to_signed,
    to_unsigned,
)


class TestInstructionFields:
    def test_default_fields_are_zero(self):
        instr = Instruction(Opcode.ADD)
        assert (instr.rd, instr.rs1, instr.rs2, instr.imm) == (0, 0, 0, 0)

    @pytest.mark.parametrize("field", ["rd", "rs1", "rs2"])
    @pytest.mark.parametrize("value", [-1, 8, 100])
    def test_register_out_of_range_rejected(self, field, value):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, **{field: value})

    @pytest.mark.parametrize("imm", [IMM_MIN - 1, IMM_MAX + 1])
    def test_immediate_out_of_range_rejected(self, imm):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADDI, rd=1, rs1=1, imm=imm)

    def test_immediate_extremes_accepted(self):
        Instruction(Opcode.ADDI, rd=1, rs1=1, imm=IMM_MIN)
        Instruction(Opcode.ADDI, rd=1, rs1=1, imm=IMM_MAX)

    def test_imm_max_covers_16bit_addresses(self):
        # Any 16-bit unsigned address must fit in one immediate.
        assert IMM_MAX >= 0xFFFF

    def test_instructions_are_frozen(self):
        instr = Instruction(Opcode.ADD, rd=1)
        with pytest.raises(AttributeError):
            instr.rd = 2


class TestEncodeDecode:
    def test_known_encoding(self):
        instr = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
        word = encode(instr)
        assert word >> 26 == int(Opcode.ADD)
        assert (word >> 23) & 0x7 == 1
        assert (word >> 20) & 0x7 == 2
        assert (word >> 17) & 0x7 == 3

    def test_negative_immediate_roundtrip(self):
        instr = Instruction(Opcode.ADDI, rd=1, rs1=1, imm=-42)
        assert decode(encode(instr)) == instr

    def test_decode_rejects_oversized_word(self):
        with pytest.raises(ValueError):
            decode(1 << 32)

    def test_decode_rejects_negative_word(self):
        with pytest.raises(ValueError):
            decode(-1)

    def test_decode_rejects_undefined_opcode(self):
        # 0x20..0x27 region has gaps (0x22 unused).
        word = 0x22 << 26
        with pytest.raises(ValueError):
            decode(word)

    @given(
        op=st.sampled_from(sorted(Opcode)),
        rd=st.integers(0, 7),
        rs1=st.integers(0, 7),
        rs2=st.integers(0, 7),
        imm=st.integers(IMM_MIN, IMM_MAX),
    )
    def test_roundtrip_property(self, op, rd, rs1, rs2, imm):
        instr = Instruction(op, rd=rd, rs1=rs1, rs2=rs2, imm=imm)
        assert decode(encode(instr)) == instr

    @given(st.integers(0, (1 << 32) - 1))
    def test_decode_never_misparses_fields(self, word):
        try:
            instr = decode(word)
        except ValueError:
            return  # undefined opcode is fine
        assert encode(instr) == word


class TestOpcodeStability:
    """The numeric opcode values are part of the binary format."""

    @pytest.mark.parametrize(
        "name,value",
        [("ADD", 0x00), ("ADDI", 0x10), ("LD", 0x20), ("ST", 0x21),
         ("BEQ", 0x28), ("JAL", 0x2E), ("NOP", 0x3E), ("HALT", 0x3F)],
    )
    def test_opcode_values(self, name, value):
        assert int(Opcode[name]) == value

    def test_all_opcodes_fit_in_six_bits(self):
        assert all(0 <= int(op) < 64 for op in Opcode)

    def test_opcode_values_unique(self):
        values = [int(op) for op in Opcode]
        assert len(values) == len(set(values))


class TestSignHelpers:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, 0), (1, 1), (0x7FFF, 32767), (0x8000, -32768), (0xFFFF, -1)],
    )
    def test_to_signed(self, value, expected):
        assert to_signed(value) == expected

    @pytest.mark.parametrize(
        "value,expected", [(-1, 0xFFFF), (65536, 0), (70000, 70000 - 65536)]
    )
    def test_to_unsigned(self, value, expected):
        assert to_unsigned(value) == expected

    @given(st.integers(-100000, 100000))
    def test_signed_unsigned_consistency(self, value):
        assert to_unsigned(to_signed(to_unsigned(value))) == to_unsigned(value)
