"""Block-compiled NV16 engine: bit-exactness against ``CPU.step``.

The block engine (`docs/isa.md`) promises that ``instructions_retired``,
``cycles``, ``energy_j`` (same left-to-right float adds), ``CPUState``
snapshots at *any* instruction boundary, and the MMIO output stream are
all bit-for-bit identical to pure ``step()`` looping.  These tests hold
it to that promise across the whole hand-written suite corpus plus the
NVC compiled-kernel corpus, including mid-block preemption
(backup/restore landing inside a basic block), ``restart_unit`` /
``clear_volatile`` semantics, fault parity, and the runaway-unit cap.
"""

import numpy as np
import pytest

from repro.isa import blockengine
from repro.isa.blockengine import MAX_BLOCK_LEN, BlockEngine
from repro.isa.cpu import CPU, ExecutionError
from repro.isa.energy import EnergyModel
from repro.workloads.asmkit import assemble_kernel
from repro.workloads.base import FunctionalWorkload
from repro.workloads.compiled import NVC_KERNELS
from repro.workloads.suite import KERNELS, expected_stream

ALL_BUILDERS = dict(KERNELS)
ALL_BUILDERS.update(NVC_KERNELS)

#: Awkward advance budgets: tiny (sub-cycle), short (a few instructions,
#: guaranteeing mid-block stops), and long (many fused blocks per call).
BUDGETS = [1e-7, 3.7e-5, 2e-3, 1.1e-4, 8e-4, 5.3e-6, 9e-3]


@pytest.fixture
def scalar_engine_off():
    """Temporarily force the scalar interpreter (engine disabled)."""
    blockengine.set_enabled(False)
    try:
        yield
    finally:
        blockengine.set_enabled(True)


def make_pair(build, frames=2):
    """Two identical workloads: one engine-driven, one scalar."""
    return (
        FunctionalWorkload(build.program, total_units=frames),
        FunctionalWorkload(build.program, total_units=frames),
    )


def workload_state(wl):
    """Everything observable about a functional workload, for equality."""
    cpu = wl.cpu
    return (
        list(cpu.state.regs),
        cpu.state.pc,
        cpu.state.halted,
        cpu.instructions_retired,
        cpu.cycles,
        cpu.energy_j,
        list(cpu.memory.output),
        wl._retired,
        wl._unit_retired,
        wl._units_done,
        wl._time_credit_s,
    )


def advance_both(engine_wl, scalar_wl, budgets):
    """Drive both workloads with the same budget schedule, comparing
    the full advance result and workload state after every call."""
    assert blockengine.enabled()
    i = 0
    while not engine_wl.finished:
        budget = budgets[i % len(budgets)]
        i += 1
        a = engine_wl.advance(budget)
        blockengine.set_enabled(False)
        try:
            b = scalar_wl.advance(budget)
        finally:
            blockengine.set_enabled(True)
        assert (a.instructions, a.energy_j, a.time_s) == (
            b.instructions, b.energy_j, b.time_s
        )
        assert workload_state(engine_wl) == workload_state(scalar_wl)
        assert i < 500_000, "workload did not finish"
    assert scalar_wl.finished


class TestAdvanceBitExactness:
    """Engine-driven advance == scalar advance, across both corpora."""

    @pytest.mark.parametrize("name", sorted(ALL_BUILDERS))
    def test_full_run_identical(self, name):
        build = ALL_BUILDERS[name]()
        engine_wl, scalar_wl = make_pair(build)
        advance_both(engine_wl, scalar_wl, BUDGETS)
        reference = expected_stream(build, 2)
        produced = np.array(engine_wl.outputs, dtype=np.uint16)
        assert np.array_equal(produced, reference)

    def test_zero_and_subcycle_budgets(self):
        build = KERNELS["fir"]()
        engine_wl, scalar_wl = make_pair(build, frames=1)
        for budget in (0.0, 1e-9, 0.0, 5e-4, 0.0):
            a = engine_wl.advance(budget)
            blockengine.set_enabled(False)
            try:
                b = scalar_wl.advance(budget)
            finally:
                blockengine.set_enabled(True)
            assert (a.instructions, a.energy_j, a.time_s) == (
                b.instructions, b.energy_j, b.time_s
            )
            assert workload_state(engine_wl) == workload_state(scalar_wl)


class TestMidBlockPreemption:
    """Snapshots at every instruction boundary match scalar stepping."""

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_lockstep_every_instruction(self, name):
        """run_count(1) == step(), compared after *every* instruction.

        This is the strongest boundary property: the engine lands on
        every dynamic instruction index of the kernel (almost all of
        them mid-block) with CPU state, counters and output stream
        identical to the scalar interpreter's.
        """
        build = ALL_BUILDERS[name]()
        engine_wl, scalar_wl = make_pair(build, frames=1)
        engine = engine_wl._engine()
        assert engine is not None
        steps = 0
        while not scalar_wl.cpu.state.halted and steps < 60_000:
            engine.run_count(engine_wl.cpu, 1)
            scalar_wl.cpu.step()
            steps += 1
            ec, sc = engine_wl.cpu, scalar_wl.cpu
            assert ec.state.regs == sc.state.regs, steps
            assert ec.state.pc == sc.state.pc, steps
            assert ec.state.halted == sc.state.halted, steps
            assert ec.instructions_retired == sc.instructions_retired
            assert ec.cycles == sc.cycles
            assert ec.energy_j == sc.energy_j, steps
            assert ec.memory.output == sc.memory.output
        # Long kernels (median) stay bounded by the step cap; every
        # compared boundary still matched bit for bit.
        assert scalar_wl.cpu.state.halted or steps == 60_000

    @pytest.mark.parametrize("name", ["fir", "crc", "sobel", "matmul"])
    def test_backup_restore_at_arbitrary_boundaries(self, name):
        """A snapshot taken mid-block restores and completes identically.

        Lands the engine on a spread of dynamic instruction indices via
        run_count, snapshots through the workload's backup API, then
        restores into fresh engine-driven and scalar workloads and runs
        both to completion with the same budgets.
        """
        build = ALL_BUILDERS[name]()
        probe = FunctionalWorkload(build.program, total_units=1)
        engine = probe._engine()
        # Indices deliberately not aligned to anything: primes land
        # mid-block for every block layout.
        landed = 0
        for index in (1, 7, 97, 641, 1999, 4441):
            wl = FunctionalWorkload(build.program, total_units=1)
            try:
                engine.run_count(wl.cpu, index)
            except ExecutionError:
                continue  # kernel shorter than index: halted earlier
            landed += 1
            wl._unit_retired = index
            snap = wl.snapshot()

            engine_wl, scalar_wl = make_pair(build, frames=1)
            engine_wl.restore(snap)
            engine_wl._unit_retired = index
            scalar_wl.restore(snap)
            scalar_wl._unit_retired = index
            advance_both(engine_wl, scalar_wl, BUDGETS)
        assert landed >= 3

    def test_restore_into_other_engine_mode(self, scalar_engine_off):
        """A snapshot taken under the scalar interpreter resumes under
        the engine bit-identically (and vice versa, by symmetry of the
        other tests)."""
        build = KERNELS["crc"]()
        wl = FunctionalWorkload(build.program, total_units=1)
        for _ in range(315):
            wl.cpu.step()
        wl._unit_retired = 315
        snap = wl.snapshot()
        blockengine.set_enabled(True)
        engine_wl, scalar_wl = make_pair(build, frames=1)
        engine_wl.restore(snap)
        engine_wl._unit_retired = 315
        scalar_wl.restore(snap)
        scalar_wl._unit_retired = 315
        advance_both(engine_wl, scalar_wl, BUDGETS)


class TestVolatilitySemantics:
    """restart_unit / clear_volatile behave identically under the engine."""

    @pytest.mark.parametrize("name", ["fir", "histogram"])
    def test_clear_volatile_then_restart(self, name):
        build = ALL_BUILDERS[name]()
        engine_wl, scalar_wl = make_pair(build)
        a = engine_wl.advance(4e-4)
        blockengine.set_enabled(False)
        try:
            b = scalar_wl.advance(4e-4)
        finally:
            blockengine.set_enabled(True)
        assert (a.instructions, a.energy_j) == (b.instructions, b.energy_j)
        # Power failure: volatile RAM wiped, unit restarts from scratch.
        for wl in (engine_wl, scalar_wl):
            wl.clear_volatile()
            wl.restart_unit()
        assert workload_state(engine_wl) == workload_state(scalar_wl)
        advance_both(engine_wl, scalar_wl, BUDGETS)
        # restart_unit keeps already-emitted outputs (they were already
        # transmitted), so the reference stream is a suffix.
        reference = expected_stream(build, 2)
        produced = np.array(engine_wl.outputs, dtype=np.uint16)
        assert len(produced) >= len(reference)
        assert np.array_equal(produced[len(produced) - len(reference):],
                              reference)


class TestFaultParity:
    """The engine raises exactly what chained step() calls would."""

    def runaway(self):
        return assemble_kernel(
            "runaway", "loop:\n    ADDI r1, r1, 1\n    JAL r0, loop\n"
        )

    def off_end(self):
        # Falls off the end of the program: no HALT anywhere.
        return assemble_kernel("off-end", "ADDI r1, r1, 1\nADDI r2, r2, 2\n")

    def test_pc_out_of_bounds_matches_scalar(self):
        build = self.off_end()
        engine_wl, scalar_wl = make_pair(build, frames=1)
        with pytest.raises(ExecutionError) as engine_exc:
            engine_wl.advance(1e-3)
        blockengine.set_enabled(False)
        try:
            with pytest.raises(ExecutionError) as scalar_exc:
                scalar_wl.advance(1e-3)
        finally:
            blockengine.set_enabled(True)
        assert str(engine_exc.value) == str(scalar_exc.value)
        # Counters include every instruction retired before the fault,
        # and the raise left _retired/_time_credit_s untouched — the
        # same partially-mutated state a raising step() leaves behind.
        assert workload_state(engine_wl) == workload_state(scalar_wl)

    def test_runaway_unit_cap_matches_scalar(self):
        build = self.runaway()
        engine_wl = FunctionalWorkload(
            build.program, total_units=1, max_instructions_per_unit=1000
        )
        scalar_wl = FunctionalWorkload(
            build.program, total_units=1, max_instructions_per_unit=1000
        )
        with pytest.raises(RuntimeError) as engine_exc:
            engine_wl.advance(1.0)
        blockengine.set_enabled(False)
        try:
            with pytest.raises(RuntimeError) as scalar_exc:
                scalar_wl.advance(1.0)
        finally:
            blockengine.set_enabled(True)
        assert str(engine_exc.value) == str(scalar_exc.value)
        # The scalar cap fires *after* the offending instruction
        # executes (1001 retired); the engine mirrors that exactly.
        assert engine_wl.cpu.instructions_retired == 1001
        assert workload_state(engine_wl) == workload_state(scalar_wl)

    def test_halted_core_raise_matches_scalar(self):
        build = KERNELS["rle"]()
        engine = BlockEngine(build.program.instructions, EnergyModel())
        cpu = CPU(build.program.instructions)
        cpu.state.halted = True
        with pytest.raises(ExecutionError, match="halted core"):
            engine.run_count(cpu, 1)
        segment = engine.run(cpu, 1.0, 0.0, 0.0, 10)
        assert segment.fault is not None
        with pytest.raises(ExecutionError) as scalar_exc:
            cpu.step()
        assert str(segment.fault) == str(scalar_exc.value)


class TestCompilation:
    def test_long_spans_split_at_max_block_len(self):
        source = "\n".join(["    ADDI r1, r1, 1"] * 300) + "\nHALT\n"
        build = assemble_kernel("straight", source)
        engine = BlockEngine(build.program.instructions, EnergyModel())
        assert engine.n_blocks == 3  # 128 + 128 + (44 + HALT)
        for blk in engine._blocks:
            assert blk.n_instructions <= MAX_BLOCK_LEN
        # Dense pc -> block coverage.
        assert len(engine._block_at) == 301

    def test_profile_counts_track_fused_and_stepped(self):
        build = KERNELS["fir"]()
        wl = FunctionalWorkload(build.program, total_units=1)
        while not wl.finished:
            wl.advance(3.1e-4)
        counts = wl._block_engine.profile_counts()
        assert counts["blocks"] == wl._block_engine.n_blocks > 0
        assert counts["fused"] > 0
        assert counts["stepped"] > 0  # budget boundaries force tails

    def test_engine_cached_and_recompiled_on_model_change(self):
        build = KERNELS["fir"]()
        wl = FunctionalWorkload(build.program, total_units=1)
        first = wl._engine()
        assert wl._engine() is first
        wl.energy_model = wl.energy_model.scaled(frequency_hz=2e6)
        second = wl._engine()
        assert second is not first
        assert second.model_signature[0] == 2e6

    def test_disable_switch_mirrors_environment(self, scalar_engine_off):
        import os

        assert not blockengine.enabled()
        assert os.environ.get("NVPSIM_NO_BLOCK_ENGINE") == "1"
        build = KERNELS["fir"]()
        wl = FunctionalWorkload(build.program, total_units=1)
        assert wl._engine() is None
        blockengine.set_enabled(True)
        assert os.environ.get("NVPSIM_NO_BLOCK_ENGINE") is None
        assert wl._engine() is not None


class TestCapabilityProtocol:
    def test_functional_workload_advertises_isa(self):
        build = KERNELS["fir"]()
        wl = FunctionalWorkload(build.program, total_units=1)
        assert wl.supports_exact_batch == "isa"

    def test_overriding_subclass_opts_out(self):
        class Custom(FunctionalWorkload):
            def advance(self, time_budget_s):
                return super().advance(time_budget_s)

        build = KERNELS["fir"]()
        assert Custom(build.program, total_units=1).supports_exact_batch is None

    def test_plain_subclass_keeps_isa_mode(self):
        class Plain(FunctionalWorkload):
            pass

        build = KERNELS["fir"]()
        assert Plain(build.program, total_units=1).supports_exact_batch == "isa"

    def test_advance_bounds_are_conservative(self):
        build = KERNELS["crc"]()
        wl = FunctionalWorkload(build.program, total_units=1)
        min_time, max_time, max_power = wl.advance_bounds()
        assert 0.0 < min_time <= max_time
        assert max_power > 0.0
        budget = 1e-3
        adv = wl.advance(budget)
        assert adv.instructions <= budget / min_time + 1
        assert adv.energy_j <= (budget + max_time) * max_power
