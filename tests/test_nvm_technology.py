"""Unit tests for the NVM technology catalog."""

import pytest

from repro.nvm.technology import (
    FERAM,
    FEFET,
    NOR_FLASH,
    NVMTechnology,
    PCM,
    RERAM,
    SRAM_REFERENCE,
    STT_MRAM,
    TECHNOLOGIES,
    technology_by_name,
)


class TestCatalog:
    def test_catalog_contains_seven_rows(self):
        assert len(TECHNOLOGIES) == 7

    def test_names_unique(self):
        names = [tech.name for tech in TECHNOLOGIES]
        assert len(names) == len(set(names))

    def test_only_sram_is_volatile(self):
        assert SRAM_REFERENCE.volatile
        assert all(not tech.volatile for tech in TECHNOLOGIES if tech is not SRAM_REFERENCE)

    def test_lookup_case_insensitive(self):
        assert technology_by_name("feram") is FERAM
        assert technology_by_name("STT-MRAM") is STT_MRAM

    def test_lookup_unknown_raises_with_choices(self):
        with pytest.raises(KeyError, match="FeRAM"):
            technology_by_name("EEPROM")

    def test_relaxation_support_flags(self):
        assert RERAM.supports_retention_relaxation
        assert STT_MRAM.supports_retention_relaxation
        assert not FERAM.supports_retention_relaxation
        assert not NOR_FLASH.supports_retention_relaxation


class TestRelativeOrdering:
    """The experiments rely on the qualitative ordering being right."""

    def test_flash_writes_are_most_expensive(self):
        others = [t for t in TECHNOLOGIES if t not in (NOR_FLASH, SRAM_REFERENCE)]
        assert all(
            NOR_FLASH.write_energy_j_per_bit > t.write_energy_j_per_bit for t in others
        )

    def test_fefet_is_cheapest_nonvolatile_write(self):
        others = [t for t in TECHNOLOGIES if t not in (FEFET, SRAM_REFERENCE)]
        assert all(
            FEFET.write_energy_j_per_bit < t.write_energy_j_per_bit for t in others
        )

    def test_wakeup_ordering_feram_vs_flash(self):
        assert FERAM.wakeup_time_s < NOR_FLASH.wakeup_time_s

    def test_reram_wakes_faster_than_feram(self):
        # The ISSCC'16 ReRAM NVP's headline 6x restore-time reduction.
        assert RERAM.wakeup_time_s < FERAM.wakeup_time_s

    def test_flash_endurance_is_worst(self):
        others = [t for t in TECHNOLOGIES if t is not NOR_FLASH]
        assert all(NOR_FLASH.endurance_cycles < t.endurance_cycles for t in others)


class TestCostFunctions:
    def test_backup_energy_scales_linearly(self):
        assert FERAM.backup_energy_j(200) == pytest.approx(
            2 * FERAM.backup_energy_j(100)
        )

    def test_backup_time_uses_parallelism(self):
        serial = FERAM.backup_time_s(128, parallelism=1)
        parallel = FERAM.backup_time_s(128, parallelism=64)
        assert serial == pytest.approx(128 * FERAM.write_latency_s)
        assert parallel == pytest.approx(2 * FERAM.write_latency_s)

    def test_backup_time_rounds_up(self):
        assert FERAM.backup_time_s(65, parallelism=64) == pytest.approx(
            2 * FERAM.write_latency_s
        )

    def test_restore_time_includes_wakeup(self):
        assert FERAM.restore_time_s(0) == pytest.approx(FERAM.wakeup_time_s)

    def test_zero_bits_cost_nothing_extra(self):
        assert FERAM.backup_energy_j(0) == 0.0
        assert FERAM.restore_energy_j(0) == 0.0

    @pytest.mark.parametrize("method", ["backup_energy_j", "restore_energy_j"])
    def test_negative_bits_rejected(self, method):
        with pytest.raises(ValueError):
            getattr(FERAM, method)(-1)

    def test_invalid_parallelism_rejected(self):
        with pytest.raises(ValueError):
            FERAM.backup_time_s(10, parallelism=0)

    def test_negative_figures_rejected_at_construction(self):
        with pytest.raises(ValueError):
            NVMTechnology(
                name="bad",
                write_energy_j_per_bit=-1.0,
                read_energy_j_per_bit=0.0,
                write_latency_s=0.0,
                read_latency_s=0.0,
                retention_s=1.0,
                endurance_cycles=1.0,
                wakeup_time_s=0.0,
            )
