"""Tests for the morphology kernels and streaming frame inputs."""

import numpy as np
import pytest

from repro.isa.cpu import CPU
from repro.workloads import morphology
from repro.workloads.images import test_image as make_image
from repro.workloads.suite import (
    KERNEL_INPUT_KEYWORD,
    build_kernel,
    make_streaming_workload,
)


def execute(build):
    cpu = CPU(build.program.instructions)
    cpu.memory.load_image(build.program.data_image)
    cpu.run(max_instructions=2_000_000)
    assert cpu.state.halted
    return np.array(cpu.memory.output, dtype=np.uint16)


class TestMorphology:
    @pytest.mark.parametrize("op", ["erode", "dilate"])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_matches_reference(self, op, seed):
        build = build_kernel(op, size=10, seed=seed)
        assert np.array_equal(execute(build), build.expected_output)

    def test_erode_shrinks_dilate_grows(self):
        img = np.zeros((8, 8), dtype=np.uint8)
        img[3:5, 3:5] = 200  # a small bright blob
        eroded = morphology.reference(img, "erode")
        dilated = morphology.reference(img, "dilate")
        assert eroded.sum() < dilated.sum()
        assert eroded.max() == 0       # 2x2 blob fully eroded by 3x3 min
        assert (dilated == 200).sum() >= 4

    def test_flat_image_unchanged(self):
        img = np.full((6, 6), 80, dtype=np.uint8)
        assert np.all(morphology.reference(img, "erode") == 80)
        assert np.all(morphology.reference(img, "dilate") == 80)

    def test_erode_le_dilate_everywhere(self):
        img = make_image(10, seed=4)
        assert np.all(
            morphology.reference(img, "erode")
            <= morphology.reference(img, "dilate")
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            morphology.reference(np.zeros((2, 2)), "erode")
        with pytest.raises(ValueError):
            morphology.reference(np.zeros((5, 5)), "open")
        with pytest.raises(ValueError):
            morphology.assembly(5, 5, op="close")


class TestStreamingWorkload:
    def test_each_frame_gets_its_own_input(self):
        frames = [make_image(8, seed=s) for s in (1, 2, 3)]
        workload, expected = make_streaming_workload("sobel", frames)
        while not workload.finished:
            workload.advance(50e-3)
        outputs = np.array(workload.outputs, dtype=np.uint16)
        assert np.array_equal(outputs, expected)
        # The frames genuinely differ: per-frame slices are not equal.
        per_frame = len(expected) // 3
        assert not np.array_equal(
            expected[:per_frame], expected[per_frame : 2 * per_frame]
        )

    def test_streaming_1d_kernel(self):
        from repro.workloads.images import test_bytes as make_bytes

        buffers = [make_bytes(48, seed=s) for s in (5, 6)]
        workload, expected = make_streaming_workload("crc", buffers)
        while not workload.finished:
            workload.advance(50e-3)
        assert list(workload.outputs) == list(expected)
        assert expected[0] != expected[1]  # different buffers, different CRCs

    def test_streaming_under_intermittent_power(self):
        """Different frames survive power cycling bit-exactly."""
        from repro.core.config import NVPConfig
        from repro.core.nvp import NVPPlatform
        from repro.harvest.sources import square_trace
        from repro.storage.capacitor import Capacitor, ChargeEfficiency
        from repro.system.simulator import SystemSimulator

        frames = [make_image(8, seed=s) for s in (7, 8, 9)]
        workload, expected = make_streaming_workload("sobel", frames)
        cap = Capacitor(
            22e-9, v_max_v=3.3, leak_resistance_ohm=1e18,
            efficiency=ChargeEfficiency(1.0, 1.0, 0.0, 1.0),
        )
        platform = NVPPlatform(workload, cap, NVPConfig(), seed=1)
        trace = square_trace(
            high_w=800e-6, low_w=0.0, period_s=0.011, duty=0.1, duration_s=10.0
        )
        result = SystemSimulator(trace, platform).run()
        assert result.completed
        assert result.backups >= 2
        outputs = np.array(workload.outputs, dtype=np.uint16)
        assert np.array_equal(outputs, expected)

    def test_validation(self):
        with pytest.raises(KeyError):
            make_streaming_workload("matmul", [np.zeros((4, 4))])
        with pytest.raises(ValueError):
            make_streaming_workload("sobel", [])
        with pytest.raises(ValueError):
            make_streaming_workload(
                "sobel", [make_image(8), make_image(10)]
            )

    def test_every_streamable_kernel_registered(self):
        for name in KERNEL_INPUT_KEYWORD:
            assert name in __import__(
                "repro.workloads.suite", fromlist=["KERNELS"]
            ).KERNELS
