"""Tests for the oracle (continuous power) platform."""

import pytest

from repro.baselines.oracle import OraclePlatform
from repro.harvest.sources import constant_trace
from repro.system.simulator import SystemSimulator
from repro.workloads.base import AbstractWorkload


class TestOracle:
    def test_executes_regardless_of_power(self):
        platform = OraclePlatform(AbstractWorkload())
        report = platform.tick(0.0, 1e-4)
        assert report.state == "run"
        assert report.instructions > 0

    def test_all_progress_is_persistent(self):
        platform = OraclePlatform(AbstractWorkload())
        for _ in range(100):
            platform.tick(0.0, 1e-4)
        stats = platform.stats()
        assert stats["forward_progress"] == stats["total_executed"]
        assert stats["lost_instructions"] == 0

    def test_completes_workload(self):
        workload = AbstractWorkload(total_units=3, instructions_per_unit=1_000)
        platform = OraclePlatform(workload)
        result = SystemSimulator(constant_trace(1e-6, 10.0), platform).run()
        assert result.completed
        assert result.units_completed == 3
        assert result.forward_progress == 3_000

    def test_execution_rate_matches_clock(self):
        """At 1 MHz with the default mix (~1.36 cycles/instr), a 10 ms
        oracle run retires roughly 7300 instructions."""
        workload = AbstractWorkload()
        platform = OraclePlatform(workload)
        for _ in range(100):  # 10 ms
            platform.tick(0.0, 1e-4)
        executed = platform.stats()["total_executed"]
        assert 6_000 < executed < 9_000

    def test_is_upper_bound_for_harvested_platforms(self):
        from repro.system.presets import build_nvp, standard_rectifier
        from repro.harvest.sources import wristwatch_trace

        trace = wristwatch_trace(2.0, seed=5)
        oracle_result = SystemSimulator(
            trace, OraclePlatform(AbstractWorkload()), stop_when_finished=False
        ).run()
        nvp_result = SystemSimulator(
            trace,
            build_nvp(AbstractWorkload()),
            rectifier=standard_rectifier(),
            stop_when_finished=False,
        ).run()
        assert oracle_result.forward_progress > nvp_result.forward_progress
