"""Unit tests for the behavioral NVM array."""

import numpy as np
import pytest

from repro.nvm.array import NVMArray
from repro.nvm.retention import LinearPolicy, UniformPolicy
from repro.nvm.technology import FERAM, STT_MRAM


class TestBasicOps:
    def test_write_read_roundtrip(self, rng):
        array = NVMArray(8)
        array.write(3, 0xABCD)
        assert array.read(3) == 0xABCD

    def test_values_truncated_to_word_bits(self):
        array = NVMArray(4, word_bits=8)
        array.write(0, 0x1FF)
        assert array.read(0) == 0xFF

    def test_uninitialised_read_rejected(self):
        array = NVMArray(4)
        with pytest.raises(ValueError, match="never been written"):
            array.read(0)

    def test_block_ops(self):
        array = NVMArray(8)
        array.write_block(2, [1, 2, 3])
        assert array.read_block(2, 3) == [1, 2, 3]

    def test_address_bounds(self):
        array = NVMArray(4)
        with pytest.raises(ValueError):
            array.write(4, 0)
        with pytest.raises(ValueError):
            array.write(-1, 0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            NVMArray(0)
        with pytest.raises(ValueError):
            NVMArray(4, word_bits=0)


class TestAccounting:
    def test_write_energy_charged_per_word(self):
        array = NVMArray(8, FERAM)
        array.write(0, 1)
        array.write(1, 2)
        assert array.stats.writes == 2
        assert array.stats.write_energy_j == pytest.approx(
            2 * array.word_write_energy_j
        )

    def test_precise_word_energy_matches_catalog(self):
        array = NVMArray(8, FERAM, word_bits=16)
        assert array.word_write_energy_j == pytest.approx(
            16 * FERAM.write_energy_j_per_bit, rel=1e-9
        )

    def test_relaxed_policy_cheaper_writes(self):
        precise = NVMArray(8, STT_MRAM)
        relaxed = NVMArray(8, STT_MRAM, policy=LinearPolicy(1e-3, STT_MRAM.retention_s))
        assert relaxed.word_write_energy_j < precise.word_write_energy_j

    def test_read_energy_charged(self):
        array = NVMArray(8, FERAM)
        array.write(0, 1)
        array.read(0)
        assert array.stats.read_energy_j == pytest.approx(
            16 * FERAM.read_energy_j_per_bit
        )


class TestOutages:
    def test_precise_array_survives_long_outage(self, rng):
        array = NVMArray(16, FERAM)
        array.write_block(0, list(range(16)))
        flips = array.power_outage(3600.0, rng)  # one hour
        assert flips == 0
        assert array.read_block(0, 16) == list(range(16))

    def test_relaxed_array_corrupts_low_bits(self, rng):
        array = NVMArray(
            64, STT_MRAM, policy=LinearPolicy(1e-4, STT_MRAM.retention_s)
        )
        array.write_block(0, [0] * 64)
        array.power_outage(0.5, rng)
        # LSB relaxations recorded; MSB untouched.
        assert array.stats.bit_failures[0] > 0
        assert array.stats.bit_failures[15] == 0
        # Values changed only in low bits.
        for value in array.read_block(0, 64):
            assert value & 0x8000 == 0

    def test_outage_on_empty_array_is_noop(self, rng):
        array = NVMArray(4, STT_MRAM, policy=LinearPolicy(1e-4, 1.0))
        assert array.power_outage(10.0, rng) == 0

    def test_zero_duration_outage_is_noop(self, rng):
        array = NVMArray(4, STT_MRAM, policy=LinearPolicy(1e-4, 1.0))
        array.write(0, 0xFFFF)
        assert array.power_outage(0.0, rng) == 0
        assert array.read(0) == 0xFFFF

    def test_negative_duration_rejected(self, rng):
        array = NVMArray(4)
        with pytest.raises(ValueError):
            array.power_outage(-1.0, rng)

    def test_outage_counter_increments(self, rng):
        array = NVMArray(4)
        array.power_outage(1.0, rng)
        array.power_outage(1.0, rng)
        assert array.stats.outages == 2

    def test_flip_count_matches_value_changes(self, rng):
        array = NVMArray(32, STT_MRAM, policy=UniformPolicy(1e-3))
        original = list(range(32))
        array.write_block(0, original)
        flips = array.power_outage(1.0, rng)  # outage >> retention
        changed_bits = sum(
            bin(a ^ b).count("1")
            for a, b in zip(original, array.read_block(0, 32))
        )
        assert changed_bits == flips
        assert flips > 0
