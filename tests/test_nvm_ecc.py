"""Tests for the SECDED backup-image code."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nvm.ecc import (
    CODEWORD_BITS,
    DATA_BITS,
    DecodeStatus,
    decode,
    encode,
    overhead_fraction,
    protect_word,
)


class TestEncode:
    def test_codeword_width(self):
        assert CODEWORD_BITS == 22
        assert encode(0xFFFF) < (1 << CODEWORD_BITS)

    def test_rejects_wide_values(self):
        with pytest.raises(ValueError):
            encode(0x10000)
        with pytest.raises(ValueError):
            encode(-1)

    def test_overhead(self):
        assert overhead_fraction() == pytest.approx(6 / 16)

    def test_distinct_words_distinct_codewords(self):
        codewords = {encode(v) for v in range(256)}
        assert len(codewords) == 256


class TestDecode:
    @given(st.integers(0, 0xFFFF))
    @settings(max_examples=200, deadline=None)
    def test_clean_roundtrip(self, value):
        result = decode(encode(value))
        assert result.value == value
        assert result.status is DecodeStatus.CLEAN

    @given(st.integers(0, 0xFFFF), st.integers(0, CODEWORD_BITS - 1))
    @settings(max_examples=300, deadline=None)
    def test_any_single_bit_error_corrected(self, value, bit):
        corrupted = encode(value) ^ (1 << bit)
        result = decode(corrupted)
        assert result.status is DecodeStatus.CORRECTED
        assert result.value == value

    @given(
        st.integers(0, 0xFFFF),
        st.integers(0, CODEWORD_BITS - 1),
        st.integers(0, CODEWORD_BITS - 1),
    )
    @settings(max_examples=300, deadline=None)
    def test_double_bit_errors_detected(self, value, bit_a, bit_b):
        if bit_a == bit_b:
            return
        corrupted = encode(value) ^ (1 << bit_a) ^ (1 << bit_b)
        result = decode(corrupted)
        assert result.status is DecodeStatus.DETECTED

    def test_rejects_wide_codewords(self):
        with pytest.raises(ValueError):
            decode(1 << CODEWORD_BITS)


class TestProtectWord:
    def test_no_relaxation_clean(self):
        rng = np.random.default_rng(0)
        value, status = protect_word(0x1234, 0, rng)
        assert value == 0x1234
        assert status is DecodeStatus.CLEAN

    def test_single_relaxed_cell_always_recovered(self):
        rng = np.random.default_rng(1)
        for bit in range(CODEWORD_BITS):
            value, status = protect_word(0xBEEF, 1 << bit, rng)
            assert value == 0xBEEF
            assert status in (DecodeStatus.CLEAN, DecodeStatus.CORRECTED)

    def test_ecc_masks_low_bit_relaxation_statistically(self):
        """With only the lowest data cell relaxed (the typical shaped-
        retention failure), ECC recovers the exact word every time,
        where the unprotected word is wrong ~half the time."""
        rng = np.random.default_rng(2)
        wrong_unprotected = 0
        wrong_protected = 0
        trials = 300
        for _ in range(trials):
            # Unprotected: the relaxed bit reads back random.
            raw = 0x00AA
            if rng.random() < 0.5:
                raw ^= 1
            wrong_unprotected += raw != 0x00AA
            value, _ = protect_word(0x00AA, 0b1, rng)
            wrong_protected += value != 0x00AA
        assert wrong_protected == 0
        assert wrong_unprotected > trials * 0.3

    def test_many_relaxed_cells_eventually_escape(self):
        """ECC is not magic: with half the codeword relaxed, some
        double-bit patterns get through as detected (or worse)."""
        rng = np.random.default_rng(3)
        statuses = set()
        for _ in range(200):
            _, status = protect_word(0x5555, (1 << 11) - 1, rng)
            statuses.add(status)
        assert DecodeStatus.DETECTED in statuses
