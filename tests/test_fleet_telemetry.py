"""Fleet telemetry: sampling, snapshots, correlation, watch CLI."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.fleet import (
    FleetSpec,
    FleetTelemetry,
    build_power_segments,
    correlation_report,
    render_correlation,
    run_fleet,
)
from repro.fleet.telemetry import SNAPSHOT_SCHEMA
from repro.obs import EventBus
from repro.obs import events as ev
from repro.obs.export import read_snapshots


def fleet_configs(n=4, duration_s=0.2, **base):
    data = {
        "name": "telemetry-fleet",
        "base": dict(
            {"platform": "nvp", "source": "rf", "duration_s": duration_s,
             "seed": 3, "mean_uw": 8.0},
            **base,
        ),
        "replicas": n,
        "stagger_s": duration_s / (2 * n),
    }
    return FleetSpec.from_dict(data).devices()


class TestFleetTelemetry:
    def test_rejects_bad_cadence(self):
        with pytest.raises(ValueError):
            FleetTelemetry(every_s=0.0)

    def test_default_cadence_and_schema(self):
        telemetry = FleetTelemetry()
        outcome = run_fleet(fleet_configs(), telemetry=telemetry)
        assert outcome.failed == 0
        # ~50 samples across the longest trace, plus the final one.
        assert 40 <= telemetry.snapshots <= 60
        snap = telemetry.last
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert snap["final"] is True
        assert snap["devices"]["total"] == 4
        assert snap["devices"]["final"] == 4
        assert snap["states"] == {"final": 4}
        assert set(snap) >= {
            "tick", "t_s", "dt_s", "devices", "states", "energy_j",
            "progress", "counters", "outage",
        }

    def test_explicit_cadence_rounds_to_ticks(self):
        telemetry = FleetTelemetry(every_s=0.05)
        run_fleet(fleet_configs(duration_s=0.2), telemetry=telemetry)
        # 0.2 s trace + staggered offsets, 0.05 s cadence.
        assert telemetry.every_s == pytest.approx(0.05)
        assert 4 <= telemetry.snapshots <= 8

    def test_results_bit_identical_with_telemetry(self):
        configs = fleet_configs()
        plain = run_fleet(list(configs))
        observed = run_fleet(list(configs), telemetry=FleetTelemetry())
        for a, b in zip(plain.records, observed.records):
            assert a.result == b.result

    def test_final_snapshot_equals_fold_of_results(self):
        """The exact-aggregate contract: the final snapshot is the
        fold of the per-device results."""
        configs = fleet_configs(n=6)
        telemetry = FleetTelemetry()
        outcome = run_fleet(configs, telemetry=telemetry)
        results = [r.result for r in outcome.records]
        snap = telemetry.last
        assert snap["progress"]["forward_progress"] == sum(
            r["forward_progress"] for r in results
        )
        assert snap["counters"]["backups"] == sum(
            r["backups"] for r in results
        )
        assert snap["counters"]["restores"] == sum(
            r["restores"] for r in results
        )
        assert snap["progress"]["run_s_total"] == pytest.approx(
            sum(r["state_time_s"].get("run", 0.0) for r in results)
        )

    def test_jsonl_and_prom_outputs(self, tmp_path):
        out = str(tmp_path / "telemetry.jsonl")
        telemetry = FleetTelemetry(every_s=0.05, out=out)
        run_fleet(fleet_configs(), telemetry=telemetry)
        snaps = read_snapshots(out)
        assert len(snaps) == telemetry.snapshots
        assert snaps[-1]["final"] is True
        assert all(s["schema"] == SNAPSHOT_SCHEMA for s in snaps)
        ticks = [s["tick"] for s in snaps]
        assert ticks == sorted(ticks)
        prom = (tmp_path / "telemetry.jsonl.prom").read_text()
        assert "fleet_progress_forward_progress" in prom
        assert "fleet_devices_total 4" in prom

    def test_snapshots_are_deterministic(self, tmp_path):
        paths = []
        for run in ("a", "b"):
            out = str(tmp_path / f"{run}.jsonl")
            run_fleet(
                fleet_configs(),
                telemetry=FleetTelemetry(every_s=0.05, out=out),
            )
            paths.append(out)
        a, b = (open(p).read() for p in paths)
        assert a == b

    def test_emits_fleet_sample_events(self):
        bus = EventBus()
        log = bus.record(names=(ev.FLEET_SAMPLE,))
        telemetry = FleetTelemetry(every_s=0.05)
        run_fleet(fleet_configs(), bus=bus, telemetry=telemetry)
        events = list(log)
        assert len(events) == telemetry.snapshots
        assert events[-1].data["snapshot"]["final"] is True

    def test_summary_safe_when_never_bound(self):
        summary = FleetTelemetry().summary()
        assert summary["snapshots"] == 0
        assert summary["energy_j"] == {"count": 0}
        assert "final" not in summary

    def test_summary_after_run(self):
        telemetry = FleetTelemetry(every_s=0.05)
        outcome = run_fleet(fleet_configs(), telemetry=telemetry)
        summary = telemetry.summary()
        assert summary["snapshots"] == telemetry.snapshots
        assert summary["energy_j"]["count"] > 0
        assert summary["final"]["forward_progress"] == sum(
            r.result["forward_progress"] for r in outcome.records
        )
        # JSON-safe for the ledger/manifest.
        json.dumps(summary)


class TestCorrelationReport:
    def test_matrix_is_symmetric_with_unit_diagonal(self):
        configs = fleet_configs(n=5)
        report = correlation_report(configs)
        matrix = np.array(report["co_outage"])
        assert matrix.shape == (5, 5)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 1.0)
        assert 0.0 <= report["mean_co_outage"] <= 1.0
        assert report["schema"] == SNAPSHOT_SCHEMA
        assert report["n_windows"] == len(report["outage_fraction"])
        json.dumps(report)

    def test_same_offset_devices_are_perfectly_correlated(self):
        spec = FleetSpec.from_dict({
            "name": "twins",
            "base": {"platform": "nvp", "source": "rf", "duration_s": 0.2,
                     "seed": 3, "mean_uw": 8.0},
            "replicas": 2,
        })
        report = correlation_report(spec.devices())
        # Same trace, same offset: identical outage windows.
        assert report["co_outage"][0][1] == 1.0

    def test_needs_no_simulation(self):
        configs = fleet_configs(n=3)
        segments = build_power_segments(configs)
        report = correlation_report(configs, window_s=segments.dt_s * 50)
        assert report["window_ticks"] == 50
        assert report["n_devices"] == 3

    def test_storm_timeline_consistency(self):
        report = correlation_report(fleet_configs(n=4))
        for storm in report["storms"]:
            assert storm["peak_fraction"] >= report["storm_fraction"]
            assert storm["duration_s"] == pytest.approx(
                storm["end_s"] - storm["start_s"]
            )
        assert report["storm_seconds"] == pytest.approx(
            sum(s["duration_s"] for s in report["storms"])
        )

    def test_render_correlation(self):
        report = correlation_report(fleet_configs(n=3))
        text = render_correlation(report)
        assert "fleet.correlate: 3 device(s)" in text
        assert "timeline [" in text

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            correlation_report(fleet_configs(n=2), window_s=-1.0)


class TestSpecCadence:
    def test_spec_cadence_roundtrip(self):
        spec = FleetSpec.from_dict({
            "name": "t", "base": {"platform": "nvp"},
            "telemetry_every_s": 0.25,
        })
        assert spec.telemetry_every_s == 0.25

    def test_spec_cadence_validated(self):
        with pytest.raises(ValueError):
            FleetSpec.from_dict({
                "name": "t", "telemetry_every_s": 0.0,
            })


class TestWatchCli:
    @pytest.fixture
    def spec_file(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps({
            "name": "watch-fleet",
            "base": {"platform": "nvp", "source": "rf", "duration_s": 0.2,
                     "seed": 3, "mean_uw": 8.0},
            "replicas": 3,
            "stagger_s": 0.03,
            "telemetry_every_s": 0.05,
        }))
        return str(path)

    @pytest.fixture
    def cache_dir(self, tmp_path, monkeypatch):
        path = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(path))
        monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
        return path

    def test_run_with_telemetry_out(
        self, spec_file, cache_dir, tmp_path, capsys
    ):
        out = tmp_path / "tel.jsonl"
        assert main([
            "fleet", "run", spec_file, "--telemetry-out", str(out),
        ]) == 0
        printed = capsys.readouterr().out
        assert "telemetry:" in printed
        snaps = read_snapshots(str(out))
        assert snaps and snaps[-1]["final"] is True
        assert (tmp_path / "tel.jsonl.prom").exists()

    def test_telemetry_lands_in_ledger_and_results(
        self, spec_file, cache_dir, tmp_path, capsys
    ):
        from repro.obs.ledger import RunLedger

        results = tmp_path / "results"
        assert main([
            "fleet", "run", spec_file, "--telemetry-every", "0.1",
            "--results-dir", str(results),
        ]) == 0
        record = RunLedger.from_env().records(command="fleet")[-1]
        assert record["telemetry"]["snapshots"] >= 2
        assert record["telemetry"]["every_s"] == pytest.approx(0.1)
        payload = json.loads((results / "watch-fleet.json").read_text())
        assert payload["fleet"]["telemetry"]["snapshots"] >= 2
        assert (
            payload["manifest"]["extra"]["telemetry"]["snapshots"] >= 2
        )
        capsys.readouterr()
        assert main(["runs", "show", record["id"]]) == 0
        assert "telemetry   :" in capsys.readouterr().out

    def test_watch_piped_is_line_buffered_plain_text(
        self, spec_file, cache_dir, capsys
    ):
        assert main(["fleet", "watch", spec_file]) == 0
        out = capsys.readouterr().out
        # capsys is not a TTY: the dashboard degrades to plain lines.
        assert "\x1b" not in out
        assert "\r" not in out
        dashboard = [l for l in out.splitlines() if l.startswith("fleet ")]
        assert len(dashboard) >= 3
        assert any("done" in line for line in dashboard)
        assert any(line.startswith("fleet   :") for line in out.splitlines())

    def test_watch_interrupt_writes_interrupted_ledger(
        self, spec_file, cache_dir, monkeypatch, capsys
    ):
        from repro.obs.ledger import RunLedger

        def explode(configs, cache=None, bus=None, telemetry=None):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.fleet.run_fleet", explode)
        assert main(["fleet", "watch", spec_file]) == 130
        record = RunLedger.from_env().records(command="fleet-watch")[-1]
        assert record["outcome"] == "interrupted"
        assert record["n_devices"] == 3
        assert record["telemetry"]["snapshots"] == 0

    def test_runs_list_devices_min(self, spec_file, cache_dir, capsys):
        assert main(["fleet", "run", spec_file, "--quiet"]) == 0
        capsys.readouterr()
        assert main(["runs", "list", "--devices-min", "3"]) == 0
        assert "watch-fleet" in capsys.readouterr().out
        assert main(["runs", "list", "--devices-min", "100"]) == 0
        assert "no matching" in capsys.readouterr().out

    def test_correlate_json(self, spec_file, capsys):
        assert main(["fleet", "correlate", spec_file, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        matrix = np.array(report["co_outage"])
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 1.0)

    def test_correlate_renders_and_writes(
        self, spec_file, tmp_path, capsys
    ):
        out = tmp_path / "corr.json"
        assert main([
            "fleet", "correlate", spec_file, "--out", str(out),
            "--window", "0.01",
        ]) == 0
        printed = capsys.readouterr().out
        assert "fleet.correlate: 3 device(s)" in printed
        report = json.loads(out.read_text())
        assert report["n_devices"] == 3
