"""Tests for the task-level timeliness analysis."""

import numpy as np
import pytest

from repro.system.scheduler import (
    JobRecord,
    PeriodicTask,
    ScheduleReport,
    schedule_replay,
)


def flat_capacity(ticks, per_tick):
    return [per_tick] * ticks


class TestPeriodicTask:
    def test_defaults_deadline_to_period(self):
        task = PeriodicTask("t", period_s=0.5, instructions=100)
        assert task.effective_deadline_s == 0.5

    def test_explicit_deadline(self):
        task = PeriodicTask("t", period_s=0.5, instructions=100, deadline_s=0.2)
        assert task.effective_deadline_s == 0.2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"period_s": 0.0, "instructions": 1},
            {"period_s": 1.0, "instructions": 0},
            {"period_s": 1.0, "instructions": 1, "deadline_s": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            PeriodicTask("t", **kwargs)


class TestReplayBasics:
    def test_ample_capacity_no_misses(self):
        tasks = [PeriodicTask("t", period_s=0.01, instructions=50)]
        report = schedule_replay(flat_capacity(100, 100), 1e-3, tasks)
        assert report.released == 10
        assert report.completed == 10
        assert report.miss_rate == 0.0

    def test_response_time_single_job(self):
        # 100 instructions at 50/tick of 1 ms -> completes at 2 ms.
        tasks = [PeriodicTask("t", period_s=1.0, instructions=100)]
        report = schedule_replay(flat_capacity(10, 50), 1e-3, tasks)
        (job,) = report.jobs
        assert job.response_s == pytest.approx(2e-3)

    def test_zero_capacity_misses_everything(self):
        tasks = [PeriodicTask("t", period_s=0.01, instructions=10)]
        report = schedule_replay(flat_capacity(50, 0), 1e-3, tasks)
        assert report.completed == 0
        assert report.miss_rate == 1.0
        assert report.p95_response_s() == float("inf")

    def test_overload_misses_some(self):
        # Demand 100 instr / 10 ms; supply 5 instr/ms = 50/10 ms.
        tasks = [PeriodicTask("t", period_s=0.01, instructions=100)]
        report = schedule_replay(flat_capacity(100, 5), 1e-3, tasks)
        assert 0.0 < report.miss_rate <= 1.0

    def test_validation(self):
        task = [PeriodicTask("t", period_s=1.0, instructions=1)]
        with pytest.raises(ValueError):
            schedule_replay([1], 0.0, task)
        with pytest.raises(ValueError):
            schedule_replay([1], 1e-3, task, policy="rm")
        with pytest.raises(ValueError):
            schedule_replay([1], 1e-3, [])


class TestPolicies:
    def test_edf_prioritises_urgent_task(self):
        """A tight-deadline task must pre-empt a loose one under EDF."""
        tasks = [
            PeriodicTask("loose", period_s=0.1, instructions=80, deadline_s=0.1),
            PeriodicTask("tight", period_s=0.1, instructions=20, deadline_s=0.004),
        ]
        capacity = flat_capacity(100, 10)  # 10 instr / ms
        edf = schedule_replay(capacity, 1e-3, tasks, policy="edf")
        tight_jobs = [j for j in edf.jobs if j.task == "tight"]
        assert all(not j.missed for j in tight_jobs)

    def test_fifo_starves_urgent_task(self):
        """FIFO serves release order; with simultaneous releases the
        loose (listed-first) task runs first and the tight one misses."""
        tasks = [
            PeriodicTask("loose", period_s=0.1, instructions=80, deadline_s=0.1),
            PeriodicTask("tight", period_s=0.1, instructions=20, deadline_s=0.004),
        ]
        capacity = flat_capacity(100, 10)
        fifo = schedule_replay(capacity, 1e-3, tasks, policy="fifo")
        tight_jobs = [j for j in fifo.jobs if j.task == "tight"]
        assert any(j.missed for j in tight_jobs)

    def test_edf_never_worse_than_fifo_here(self):
        tasks = [
            PeriodicTask("a", period_s=0.05, instructions=30, deadline_s=0.01),
            PeriodicTask("b", period_s=0.02, instructions=10),
        ]
        capacity = flat_capacity(200, 6)
        edf = schedule_replay(capacity, 1e-3, tasks, policy="edf")
        fifo = schedule_replay(capacity, 1e-3, tasks, policy="fifo")
        assert edf.misses <= fifo.misses


class TestBurstinessEffect:
    def test_bursty_capacity_misses_more_than_smooth(self):
        """Equal total capacity, different timeliness — the scheduling
        argument for per-emergency granularity."""
        tasks = [PeriodicTask("sense", period_s=0.02, instructions=40)]
        smooth = flat_capacity(400, 4)  # 4/tick steadily
        bursty = ([0] * 90 + [40] * 10) * 4  # same total, 90 ms droughts
        smooth_report = schedule_replay(smooth, 1e-3, tasks)
        bursty_report = schedule_replay(bursty, 1e-3, tasks)
        assert sum(smooth) == sum(bursty)
        assert bursty_report.miss_rate > smooth_report.miss_rate

    def test_platform_telemetry_integration(self):
        """End-to-end: replay real NVP telemetry against a task set."""
        from repro.harvest.sources import square_trace
        from repro.system.presets import build_nvp
        from repro.system.simulator import SystemSimulator
        from repro.system.telemetry import Telemetry
        from repro.workloads.base import AbstractWorkload

        trace = square_trace(
            high_w=1000e-6, low_w=0.0, period_s=0.1, duty=0.5, duration_s=2.0
        )
        telemetry = Telemetry()
        platform = build_nvp(AbstractWorkload())
        SystemSimulator(
            trace, platform, stop_when_finished=False, telemetry=telemetry
        ).run()
        tasks = [PeriodicTask("sense", period_s=0.2, instructions=2_000)]
        report = schedule_replay(telemetry.instructions, trace.dt_s, tasks)
        assert report.released == 10
        assert report.completed > 0
