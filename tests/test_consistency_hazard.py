"""The intermittent-consistency hazard, demonstrated.

NVP rollback restores *register* state from the backup image, but NVM
data-memory writes that happened after the backup persist.  A kernel
that read-modify-writes NVM (like the histogram's bin increments) is
therefore not replay-idempotent: re-executing a span after a rollback
double-counts its increments.  Kernels that only read inputs and write
outputs (sobel, median, CRC-in-register...) replay safely.

The DATE'17 tutorial lists exactly this memory-consistency problem as
an open challenge for intermittent computing; these tests pin the
behaviour down.
"""

import numpy as np
import pytest

from repro.workloads.suite import build_kernel, make_functional_workload


def run_with_forced_rollback(name, advance_budget_s=2e-4, **kernel_kwargs):
    """Execute a kernel with one artificial rollback in the middle.

    Returns (outputs, expected) arrays.
    """
    build = build_kernel(name, **kernel_kwargs)
    workload = make_functional_workload(build, frames=1)
    # Run ~25% of the frame, snapshot (backup), run another ~25%, then
    # roll back to the snapshot (power failed without a new backup).
    profile_total = None
    steps = 0
    while not workload.finished:
        workload.advance(advance_budget_s)
        steps += 1
        if steps == 3:
            snapshot = workload.snapshot()
        if steps == 6:
            workload.restore(snapshot)
            break
    while not workload.finished:
        workload.advance(10e-3)
    del profile_total
    outputs = np.array(workload.outputs, dtype=np.uint16)
    return outputs, build.expected_output


class TestReplayIdempotence:
    def test_sobel_is_replay_idempotent(self):
        """Pure read-input/write-output kernels survive rollback."""
        outputs, expected = run_with_forced_rollback("sobel", size=12)
        assert np.array_equal(outputs, expected)

    def test_crc_is_replay_idempotent(self):
        """Register-held accumulators roll back with the registers."""
        outputs, expected = run_with_forced_rollback("crc", length=128)
        assert np.array_equal(outputs, expected)

    def test_fir_is_replay_idempotent(self):
        outputs, expected = run_with_forced_rollback("fir", length=96)
        assert np.array_equal(outputs, expected)

    def test_histogram_double_counts_after_rollback(self):
        """The WAR hazard: NVM bin increments before the rollback
        persist, so replayed increments double-count.  The total count
        exceeds the input length by exactly the replayed span."""
        outputs, expected = run_with_forced_rollback("histogram", length=256)
        assert len(outputs) == len(expected)
        total = int(outputs.sum())
        assert total > int(expected.sum())  # double-counted increments
        assert not np.array_equal(outputs, expected)

    def test_histogram_correct_without_rollback(self):
        """Sanity: the hazard needs a rollback to manifest."""
        build = build_kernel("histogram", length=256)
        workload = make_functional_workload(build, frames=1)
        while not workload.finished:
            workload.advance(10e-3)
        outputs = np.array(workload.outputs, dtype=np.uint16)
        assert np.array_equal(outputs, build.expected_output)
