"""Unit tests for the PowerTrace container."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.harvest.traces import DEFAULT_DT_S, PowerTrace


def make_trace(values, dt=1e-4):
    return PowerTrace(np.asarray(values, dtype=float), dt, source="test")


class TestConstruction:
    def test_basic_properties(self):
        trace = make_trace([1e-6, 2e-6, 3e-6])
        assert len(trace) == 3
        assert trace.duration_s == pytest.approx(3e-4)
        assert trace.mean_power_w == pytest.approx(2e-6)
        assert trace.peak_power_w == pytest.approx(3e-6)
        assert trace.total_energy_j == pytest.approx(6e-6 * 1e-4)

    def test_default_dt_is_100_microseconds(self):
        assert DEFAULT_DT_S == pytest.approx(1e-4)

    @pytest.mark.parametrize(
        "samples,dt",
        [([], 1e-4), ([[1, 2]], 1e-4), ([1.0], 0.0), ([-1.0], 1e-4)],
    )
    def test_invalid_construction(self, samples, dt):
        with pytest.raises(ValueError):
            PowerTrace(np.asarray(samples, dtype=float), dt)

    def test_iteration(self):
        assert list(make_trace([1.0, 2.0])) == [1.0, 2.0]

    def test_equality(self):
        assert make_trace([1.0, 2.0]) == make_trace([1.0, 2.0])
        assert make_trace([1.0, 2.0]) != make_trace([1.0, 3.0])


class TestPowerAt:
    def test_zero_order_hold(self):
        trace = make_trace([1.0, 2.0, 3.0])
        assert trace.power_at(0.0) == 1.0
        assert trace.power_at(1.5e-4) == 2.0

    def test_out_of_range(self):
        trace = make_trace([1.0])
        with pytest.raises(ValueError):
            trace.power_at(1e-4)
        with pytest.raises(ValueError):
            trace.power_at(-1e-9)


class TestTransforms:
    def test_scaled_to_mean(self):
        trace = make_trace([1.0, 3.0]).scaled_to_mean(10.0)
        assert trace.mean_power_w == pytest.approx(10.0)
        assert trace.samples_w[1] / trace.samples_w[0] == pytest.approx(3.0)

    def test_scaled_zero_trace_rejected(self):
        with pytest.raises(ValueError):
            make_trace([0.0, 0.0]).scaled_to_mean(1.0)

    def test_clipped(self):
        trace = make_trace([1.0, 5.0]).clipped(2.0)
        assert list(trace.samples_w) == [1.0, 2.0]

    def test_slice(self):
        trace = make_trace([1.0, 2.0, 3.0, 4.0])
        part = trace.slice(1e-4, 3e-4)
        assert list(part.samples_w) == [2.0, 3.0]

    def test_slice_invalid_bounds(self):
        trace = make_trace([1.0, 2.0])
        with pytest.raises(ValueError):
            trace.slice(1e-4, 1e-4)

    def test_repeated(self):
        trace = make_trace([1.0, 2.0]).repeated(3)
        assert len(trace) == 6
        assert list(trace.samples_w[:4]) == [1.0, 2.0, 1.0, 2.0]

    def test_resampled_halves_samples(self):
        trace = make_trace([1.0, 2.0, 3.0, 4.0]).resampled(2e-4)
        assert len(trace) == 2

    def test_resample_preserves_duration_approximately(self):
        trace = make_trace(np.linspace(0, 1, 1000))
        resampled = trace.resampled(3.3e-4)
        assert resampled.duration_s == pytest.approx(trace.duration_s, rel=0.01)

    def test_transforms_do_not_mutate_original(self):
        trace = make_trace([1.0, 5.0])
        trace.clipped(2.0)
        trace.scaled_to_mean(100.0)
        assert list(trace.samples_w) == [1.0, 5.0]


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        trace = make_trace([1e-6, 2e-6, 3e-6])
        path = str(tmp_path / "trace.npz")
        trace.save(path)
        loaded = PowerTrace.load(path)
        assert loaded == trace


@given(
    st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=50),
    st.floats(min_value=1e-6, max_value=1.0),
)
def test_energy_equals_mean_times_duration(samples, dt):
    trace = PowerTrace(np.asarray(samples), dt)
    assert trace.total_energy_j == pytest.approx(
        trace.mean_power_w * trace.duration_s, rel=1e-9, abs=1e-30
    )
