"""Tests for closed-loop backup-margin adaptation."""

import pytest

from repro.core.config import NVPConfig
from repro.core.nvp import NVPPlatform
from repro.harvest.sources import wristwatch_trace
from repro.system.presets import nvp_capacitor, standard_rectifier
from repro.system.simulator import SystemSimulator
from repro.workloads.base import AbstractWorkload


class UnderestimatingWorkload(AbstractWorkload):
    """Reports 60% of its true run power to the threshold planner —
    the estimation error the margin exists to absorb."""

    def mean_instruction_energy_j(self) -> float:
        return 0.6 * super().mean_instruction_energy_j()


def run(margin, adaptive, seed=2018):
    trace = wristwatch_trace(6.0, seed=seed, mean_power_w=20e-6)
    platform = NVPPlatform(
        UnderestimatingWorkload(),
        nvp_capacitor(),
        NVPConfig(backup_margin=margin, label="nvp"),
        seed=0,
        adaptive_margin=adaptive,
    )
    result = SystemSimulator(
        trace, platform, rectifier=standard_rectifier(), stop_when_finished=False
    ).run()
    return platform, result


class TestAdaptiveMargin:
    def test_static_bare_margin_loses_work(self):
        _, result = run(margin=1.0, adaptive=False)
        assert result.lost_instructions > 0
        assert result.failed_backups + result.rollbacks > 0

    def test_adaptation_raises_margin_after_losses(self):
        platform, result = run(margin=1.0, adaptive=True)
        assert platform.margin_raises > 0
        assert result.extras["final_margin"] > 1.0

    def test_adaptation_recovers_most_of_the_lost_work(self):
        """Starting from the same bare margin, the adaptive controller
        must end with far fewer lost instructions than static."""
        _, static = run(margin=1.0, adaptive=False)
        _, adaptive = run(margin=1.0, adaptive=True)
        assert adaptive.lost_instructions < 0.5 * static.lost_instructions
        assert adaptive.forward_progress >= static.forward_progress

    def test_well_margined_system_never_adapts(self):
        platform, result = run(margin=3.0, adaptive=True)
        assert platform.margin_raises == 0
        assert result.extras["final_margin"] == pytest.approx(3.0)

    def test_margin_never_decays_below_configured(self):
        platform, _ = run(margin=1.2, adaptive=True)
        assert platform._margin >= 1.2

    def test_margin_capped(self):
        platform, _ = run(margin=1.0, adaptive=True)
        assert platform._margin <= platform._MARGIN_MAX

    def test_stats_expose_adaptation(self):
        platform, result = run(margin=1.0, adaptive=True)
        assert "margin_raises" in result.extras
        assert "final_margin" in result.extras
