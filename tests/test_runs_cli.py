"""End-to-end tests for ledger recording and ``repro runs``."""

import json

import pytest

from repro.cli import main
from repro.obs.ledger import RunLedger


@pytest.fixture
def env(tmp_path, monkeypatch):
    """Cache and ledger co-located under one tmp root (the default)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
    return tmp_path


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps({
        "name": "runs-cli",
        "base": {"source": "wristwatch", "duration_s": 0.2, "seed": 11},
        "axes": {"capacitance_f": [6.8e-08, 1.5e-07]},
    }))
    return str(path)


class TestSweepRecording:
    def test_sweep_appends_and_prints_ledger_line(self, env, spec_file,
                                                  capsys):
        assert main(["sweep", spec_file, "--quiet"]) == 0
        out = capsys.readouterr().out
        (record,) = RunLedger.from_env().records()
        assert f"ledger  : {record['id']} (ok)" in out
        assert record["command"] == "sweep"
        assert record["experiment"] == "runs-cli"
        assert record["points"] == {
            "total": 2, "executed": 2, "cached": 0, "failed": 0,
            "interrupted": 0,
        }
        assert record["cache"]["hit_rate"] == 0.0
        assert record["resources"]["cpu_s"] >= 0.0
        assert len(record["runs"]) == 2

    def test_second_sweep_records_full_cache_hit(self, env, spec_file,
                                                 capsys):
        assert main(["sweep", spec_file, "--quiet"]) == 0
        assert main(["sweep", spec_file, "--quiet"]) == 0
        capsys.readouterr()
        first, second = RunLedger.from_env().records()
        assert second["cache"] == {"hits": 2, "misses": 0, "hit_rate": 1.0}
        assert second["points"]["executed"] == 0
        assert second["spec_hash"] == first["spec_hash"]

    def test_simulate_records(self, env, capsys):
        assert main(["simulate", "--duration", "0.2"]) == 0
        out = capsys.readouterr().out
        (record,) = RunLedger.from_env().records(command="simulate")
        assert f"ledger  : {record['id']}" in out
        assert record["outcome"] == "ok"
        assert record["spec_hash"]
        assert record["resources"]["cpu_s"] >= 0.0

    def test_simulate_json_stdout_stays_pure(self, env, capsys):
        assert main(["simulate", "--duration", "0.2", "--json"]) == 0
        json.loads(capsys.readouterr().out)  # raises if polluted
        assert len(RunLedger.from_env().records(command="simulate")) == 1

    def test_compare_records(self, env, capsys):
        assert main(["compare", "--duration", "0.2"]) == 0
        capsys.readouterr()
        (record,) = RunLedger.from_env().records(command="compare")
        assert record["outcome"] == "ok"
        assert record["points"]["total"] == 4  # one per platform

    def test_disabled_ledger_means_no_line_no_file(self, env, spec_file,
                                                   monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LEDGER_DIR", "")
        assert main(["sweep", spec_file, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "ledger" not in out
        assert RunLedger.from_env() is None


class TestRunsList:
    def test_list_and_filters(self, env, spec_file, capsys):
        main(["sweep", spec_file, "--quiet"])
        main(["simulate", "--duration", "0.2"])
        capsys.readouterr()
        assert main(["runs", "list"]) == 0
        out = capsys.readouterr().out
        assert "runs-cli" in out
        assert "simulate" in out
        assert main(["runs", "list", "--command", "sweep"]) == 0
        out = capsys.readouterr().out
        assert "simulate" not in out
        assert main(["runs", "list", "--outcome", "error"]) == 0
        assert "no matching ledger records" in capsys.readouterr().out

    def test_list_json_and_limit(self, env, spec_file, capsys):
        main(["sweep", spec_file, "--quiet"])
        main(["sweep", spec_file, "--quiet"])
        capsys.readouterr()
        assert main(["runs", "list", "--json", "--limit", "1"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 1
        assert records[0]["points"]["cached"] == 2  # the newest record

    def test_list_since_date(self, env, spec_file, capsys):
        main(["sweep", spec_file, "--quiet"])
        capsys.readouterr()
        assert main(["runs", "list", "--since", "2000-01-01"]) == 0
        assert "runs-cli" in capsys.readouterr().out
        assert main(["runs", "list", "--since", "2999-01-01"]) == 0
        assert "no matching" in capsys.readouterr().out

    def test_bad_date_is_clean_error(self, env):
        with pytest.raises(SystemExit, match="cannot parse time"):
            main(["runs", "list", "--since", "yesterdayish"])

    def test_disabled_ledger_exits_2(self, env, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LEDGER_DIR", "")
        with pytest.raises(SystemExit) as info:
            main(["runs", "list"])
        assert info.value.code == 2

    def test_explicit_ledger_flag_overrides_disable(self, env, spec_file,
                                                    monkeypatch, capsys):
        main(["sweep", spec_file, "--quiet"])
        path = RunLedger.from_env().path
        monkeypatch.setenv("REPRO_LEDGER_DIR", "")
        capsys.readouterr()
        assert main(["runs", "--ledger", path, "list"]) == 0
        assert "runs-cli" in capsys.readouterr().out


class TestRunsShowDiff:
    def test_show_renders_record(self, env, spec_file, capsys):
        main(["sweep", spec_file, "--quiet"])
        capsys.readouterr()
        (record,) = RunLedger.from_env().records()
        assert main(["runs", "show", record["id"][:6]]) == 0
        out = capsys.readouterr().out
        assert record["id"] in out
        assert "2 total — 2 executed" in out
        assert "capacitance_f=6.8e-08" in out

    def test_show_json(self, env, spec_file, capsys):
        main(["sweep", spec_file, "--quiet"])
        capsys.readouterr()
        (record,) = RunLedger.from_env().records()
        assert main(["runs", "show", record["id"], "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["id"] == record["id"]

    def test_show_unknown_id_clean_error(self, env, spec_file):
        main(["sweep", spec_file, "--quiet"])
        with pytest.raises(SystemExit, match="no ledger record"):
            main(["runs", "show", "zzzzzz"])

    def test_diff_double_sweep_shows_full_hit(self, env, spec_file,
                                              capsys):
        main(["sweep", spec_file, "--quiet"])
        main(["sweep", spec_file, "--quiet"])
        capsys.readouterr()
        first, second = RunLedger.from_env().records()
        assert main(["runs", "diff", first["id"], second["id"]]) == 0
        out = capsys.readouterr().out
        assert "same spec" in out
        assert "cache hit : 0% -> 100% (+2 hits)" in out
        assert "2 executed, 0 cached" in out and "0 executed, 2 cached" in out

    def test_diff_json(self, env, spec_file, capsys):
        main(["sweep", spec_file, "--quiet"])
        main(["sweep", spec_file, "--quiet"])
        capsys.readouterr()
        first, second = RunLedger.from_env().records()
        assert main([
            "runs", "diff", first["id"], second["id"], "--json",
        ]) == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff["same_spec"] is True
        assert diff["cache"]["hits_delta"] == 2


class TestRunsGc:
    def test_gc_prunes_after_cache_clear(self, env, spec_file, capsys):
        from repro.exp import ResultCache

        main(["sweep", spec_file, "--quiet"])
        capsys.readouterr()
        assert main(["runs", "gc", "--dry-run"]) == 0
        assert "would prune 0" in capsys.readouterr().out
        ResultCache().clear()
        assert main(["runs", "gc"]) == 0
        assert "pruned 1 record(s), kept 0" in capsys.readouterr().out
        assert RunLedger.from_env().records() == []

    def test_gc_keeps_uncached_compare_records(self, env, capsys):
        main(["compare", "--duration", "0.2"])
        capsys.readouterr()
        # compare never writes the result cache; its record is pure
        # invocation history and must survive gc.
        assert main(["runs", "gc"]) == 0
        assert "pruned 0" in capsys.readouterr().out
        (record,) = RunLedger.from_env().records(command="compare")
        assert record["uncached"] is True


class TestLiveFlag:
    def test_live_parses_and_degrades_when_piped(self, env, spec_file,
                                                 capsys):
        assert main(["sweep", spec_file, "--live"]) == 0
        out = capsys.readouterr().out
        # capsys stdout is not a TTY: plain line-buffered progress.
        assert "\x1b" not in out
        assert "live    :" in out
        assert "cache hit" in out

    def test_live_replaces_default_progress(self, env, spec_file, capsys):
        assert main(["sweep", spec_file, "--live"]) == 0
        out = capsys.readouterr().out
        assert "[  1/2]" not in out  # the plain per-point lines


class TestBenchReportJson:
    def test_json_artifact_written(self, tmp_path, capsys):
        from repro.obs.history import append_record

        history = tmp_path / "history.jsonl"
        append_record(str(history), "exp", {"speedup": 2.0}, run="a")
        append_record(str(history), "exp", {"speedup": 2.2}, run="b")
        out_json = tmp_path / "report.json"
        assert main([
            "bench-report", "--history", str(history),
            "--json", str(out_json),
        ]) == 0
        capsys.readouterr()
        data = json.loads(out_json.read_text())
        assert data["passed"] is True
        assert data["sections"][0]["experiment"] == "exp"
        metric = data["sections"][0]["metrics"][0]
        assert metric["metric"] == "speedup"
        assert metric["change"] == pytest.approx(0.1)
