"""Unit tests for the capacitor model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.storage.capacitor import (
    Capacitor,
    ChargeEfficiency,
    FLAT_EFFICIENCY,
)


def lossless_cap(capacitance=1e-6, v_max=3.3, v_init=0.0):
    return Capacitor(
        capacitance,
        v_max_v=v_max,
        v_initial_v=v_init,
        leak_resistance_ohm=1e18,
        efficiency=ChargeEfficiency(1.0, 1.0, 0.0, 1.0),
    )


class TestEfficiencyCurve:
    def test_peak_at_optimum(self):
        curve = ChargeEfficiency(0.9, 0.4, v_opt_v=2.0, v_span_v=2.0)
        assert curve(2.0) == pytest.approx(0.9)

    def test_floor_far_from_optimum(self):
        curve = ChargeEfficiency(0.9, 0.4, v_opt_v=2.0, v_span_v=1.0)
        assert curve(0.0) == pytest.approx(0.4)

    def test_symmetry(self):
        curve = ChargeEfficiency(0.9, 0.1, v_opt_v=2.0, v_span_v=2.0)
        assert curve(1.0) == pytest.approx(curve(3.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            ChargeEfficiency(eta_peak=0.0)
        with pytest.raises(ValueError):
            ChargeEfficiency(eta_peak=0.5, eta_floor=0.6)
        with pytest.raises(ValueError):
            ChargeEfficiency(v_span_v=0.0)
        with pytest.raises(ValueError):
            ChargeEfficiency()(-1.0)


class TestStateRelations:
    def test_energy_voltage_relation(self):
        cap = lossless_cap(capacitance=2e-6, v_init=2.0)
        assert cap.energy_j == pytest.approx(0.5 * 2e-6 * 4.0)
        assert cap.voltage_v == pytest.approx(2.0)

    def test_capacity(self):
        cap = lossless_cap(capacitance=1e-6, v_max=3.0)
        assert cap.energy_max_j == pytest.approx(4.5e-6)

    def test_state_of_charge(self):
        cap = lossless_cap(v_max=2.0, v_init=2.0)
        assert cap.state_of_charge == pytest.approx(1.0)

    def test_set_energy(self):
        cap = lossless_cap()
        cap.set_energy(1e-7)
        assert cap.energy_j == pytest.approx(1e-7)
        with pytest.raises(ValueError):
            cap.set_energy(cap.energy_max_j * 2)

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            Capacitor(0.0)
        with pytest.raises(ValueError):
            Capacitor(1e-6, v_max_v=0.0)
        with pytest.raises(ValueError):
            Capacitor(1e-6, v_initial_v=5.0, v_max_v=3.3)
        with pytest.raises(ValueError):
            Capacitor(1e-6, leak_resistance_ohm=0.0)


class TestStepDynamics:
    def test_charging_accumulates(self):
        cap = lossless_cap()
        cap.step(p_in_w=1e-3, p_load_w=0.0, dt_s=1e-3)
        assert cap.energy_j == pytest.approx(1e-6)

    def test_load_draws(self):
        cap = lossless_cap(v_init=2.0)
        start = cap.energy_j
        result = cap.step(p_in_w=0.0, p_load_w=1e-3, dt_s=1e-3)
        assert result.delivered_j == pytest.approx(1e-6)
        assert cap.energy_j == pytest.approx(start - 1e-6)
        assert not result.deficit

    def test_deficit_when_empty(self):
        cap = lossless_cap()
        result = cap.step(p_in_w=0.0, p_load_w=1e-3, dt_s=1e-3)
        assert result.deficit
        assert result.delivered_j == 0.0

    def test_partial_delivery_flags_deficit(self):
        cap = lossless_cap()
        cap.set_energy(0.5e-6)
        result = cap.step(p_in_w=0.0, p_load_w=1e-3, dt_s=1e-3)
        assert result.deficit
        assert result.delivered_j == pytest.approx(0.5e-6)

    def test_overflow_is_wasted(self):
        cap = lossless_cap(capacitance=1e-9, v_max=1.0)  # 0.5 nJ capacity
        result = cap.step(p_in_w=1e-3, p_load_w=0.0, dt_s=1e-3)  # 1 uJ in
        assert cap.energy_j == pytest.approx(cap.energy_max_j)
        assert result.wasted_j == pytest.approx(1e-6 - 0.5e-9, rel=1e-6)

    def test_leakage_drains(self):
        cap = Capacitor(
            1e-6, v_initial_v=2.0, leak_resistance_ohm=1e3,
            efficiency=ChargeEfficiency(1.0, 1.0, 0.0, 1.0),
        )
        start = cap.energy_j
        result = cap.step(p_in_w=0.0, p_load_w=0.0, dt_s=1e-3)
        assert result.leaked_j > 0
        assert cap.energy_j < start

    def test_conversion_loss_counted_as_waste(self):
        cap = Capacitor(
            1e-6, leak_resistance_ohm=1e18,
            efficiency=ChargeEfficiency(0.5, 0.5, 0.0, 1.0),
        )
        result = cap.step(p_in_w=1e-3, p_load_w=0.0, dt_s=1e-3)
        assert result.charged_j == pytest.approx(0.5e-6)
        assert result.wasted_j == pytest.approx(0.5e-6)

    def test_min_charge_current_blocks_weak_input(self):
        cap = Capacitor(
            1e-6, v_initial_v=2.0, leak_resistance_ohm=1e18,
            efficiency=ChargeEfficiency(1.0, 1.0, 0.0, 1.0),
            min_charge_current_a=20e-6,
        )
        # 10 uW at 2 V is 5 uA < 20 uA: blocked.
        result = cap.step(p_in_w=10e-6, p_load_w=0.0, dt_s=1e-3)
        assert result.charged_j == 0.0
        assert result.wasted_j == pytest.approx(10e-9)

    def test_min_charge_current_allows_strong_input(self):
        cap = Capacitor(
            1e-6, v_initial_v=2.0, leak_resistance_ohm=1e18,
            efficiency=ChargeEfficiency(1.0, 1.0, 0.0, 1.0),
            min_charge_current_a=20e-6,
        )
        result = cap.step(p_in_w=100e-6, p_load_w=0.0, dt_s=1e-3)
        assert result.charged_j > 0

    def test_empty_capacitor_always_chargeable(self):
        """At 0 V the min-current check cannot block (V=0)."""
        cap = Capacitor(
            1e-6, leak_resistance_ohm=1e18,
            efficiency=ChargeEfficiency(1.0, 1.0, 0.0, 1.0),
            min_charge_current_a=20e-6,
        )
        result = cap.step(p_in_w=1e-6, p_load_w=0.0, dt_s=1e-3)
        assert result.charged_j > 0

    def test_argument_validation(self):
        cap = lossless_cap()
        with pytest.raises(ValueError):
            cap.step(-1.0, 0.0, 1e-3)
        with pytest.raises(ValueError):
            cap.step(0.0, -1.0, 1e-3)
        with pytest.raises(ValueError):
            cap.step(0.0, 0.0, 0.0)


class TestDraw:
    def test_draw_partial(self):
        cap = lossless_cap()
        cap.set_energy(1e-6)
        assert cap.draw(4e-6) == pytest.approx(1e-6)
        assert cap.energy_j == 0.0

    def test_draw_negative_rejected(self):
        with pytest.raises(ValueError):
            lossless_cap().draw(-1.0)


class TestCumulativeAccounting:
    def test_totals_accumulate(self):
        cap = lossless_cap(v_init=1.0)
        cap.step(1e-3, 1e-4, 1e-3)
        cap.step(1e-3, 1e-4, 1e-3)
        assert cap.total_charged_j == pytest.approx(2e-6)
        assert cap.total_delivered_j == pytest.approx(2e-7)


@given(
    p_in=st.floats(min_value=0.0, max_value=1e-2),
    p_load=st.floats(min_value=0.0, max_value=1e-2),
    dt=st.floats(min_value=1e-6, max_value=1.0),
    v_init=st.floats(min_value=0.0, max_value=3.3),
)
def test_energy_never_negative_nor_above_capacity(p_in, p_load, dt, v_init):
    cap = Capacitor(1e-6, v_max_v=3.3, v_initial_v=v_init)
    cap.step(p_in, p_load, dt)
    assert -1e-18 <= cap.energy_j <= cap.energy_max_j + 1e-18


@given(
    p_in=st.floats(min_value=0.0, max_value=1e-3),
    dt=st.floats(min_value=1e-6, max_value=1e-1),
)
def test_step_energy_balance(p_in, dt):
    """charged - leaked - delivered == energy delta (exact bookkeeping)."""
    cap = Capacitor(1e-6, v_initial_v=1.0, efficiency=FLAT_EFFICIENCY)
    before = cap.energy_j
    result = cap.step(p_in, 1e-4, dt)
    delta = cap.energy_j - before
    assert delta == pytest.approx(
        result.charged_j - result.leaked_j - result.delivered_j, abs=1e-18
    )
