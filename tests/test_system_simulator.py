"""Tests for the system simulator, thresholds, and presets."""

import pytest

from repro.baselines.oracle import OraclePlatform
from repro.harvest.rectifier import Rectifier
from repro.harvest.sources import constant_trace, square_trace
from repro.system.presets import (
    build_checkpoint,
    build_nvp,
    build_oracle,
    build_wait_compute,
    checkpoint_capacitor,
    nvp_capacitor,
    standard_rectifier,
    supercap,
)
from repro.system.simulator import SystemSimulator, TickReport
from repro.system.thresholds import ThresholdPlan, plan_thresholds
from repro.workloads.base import AbstractWorkload


class TestThresholdPlanning:
    def test_ordering(self):
        plan = plan_thresholds(1e-9, 2e-9, 200e-6, 1e-4)
        assert plan.start_threshold_j > plan.backup_threshold_j > 0

    def test_margin_scales_backup_threshold(self):
        lo = plan_thresholds(1e-9, 2e-9, 200e-6, 1e-4, backup_margin=1.0)
        hi = plan_thresholds(1e-9, 2e-9, 200e-6, 1e-4, backup_margin=3.0)
        assert hi.backup_threshold_j == pytest.approx(3 * lo.backup_threshold_j)

    def test_start_includes_restore_and_reserve(self):
        plan = plan_thresholds(
            1e-9, 2e-9, 200e-6, 1e-4, backup_margin=1.0, run_reserve_ticks=0.0
        )
        assert plan.start_threshold_j == pytest.approx(
            plan.backup_threshold_j + 2e-9
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backup_cost_j": -1.0},
            {"run_power_w": -1.0},
            {"tick_s": 0.0},
            {"backup_margin": 0.9},
            {"run_reserve_ticks": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        defaults = dict(
            backup_cost_j=1e-9, restore_cost_j=1e-9, run_power_w=1e-4, tick_s=1e-4
        )
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            plan_thresholds(**defaults)

    def test_plan_ordering_enforced(self):
        with pytest.raises(ValueError):
            ThresholdPlan(
                backup_threshold_j=2.0,
                start_threshold_j=1.0,
                backup_cost_j=1.0,
                restore_cost_j=1.0,
            )


class TestSimulator:
    def test_state_times_sum_to_duration(self):
        trace = square_trace(1000e-6, 0.0, 0.1, 0.5, 1.0)
        platform = build_nvp(AbstractWorkload())
        result = SystemSimulator(trace, platform, stop_when_finished=False).run()
        assert sum(result.state_time_s.values()) == pytest.approx(result.duration_s)
        assert result.duration_s == pytest.approx(trace.duration_s)

    def test_stop_when_finished(self):
        workload = AbstractWorkload(total_units=1, instructions_per_unit=100)
        platform = build_oracle(workload)
        trace = constant_trace(1e-6, 10.0)
        result = SystemSimulator(trace, platform).run()
        assert result.completed
        assert result.duration_s < 1.0
        assert result.completion_time_s == pytest.approx(result.duration_s)

    def test_run_to_end_when_not_stopping(self):
        workload = AbstractWorkload(total_units=1, instructions_per_unit=100)
        platform = build_oracle(workload)
        trace = constant_trace(1e-6, 0.5)
        result = SystemSimulator(trace, platform, stop_when_finished=False).run()
        assert result.completed
        assert result.duration_s == pytest.approx(0.5)

    def test_rectifier_reduces_harvested_energy(self):
        trace = constant_trace(100e-6, 0.2)
        raw = SystemSimulator(
            trace, OraclePlatform(AbstractWorkload()), stop_when_finished=False
        ).run()
        rectified = SystemSimulator(
            trace,
            OraclePlatform(AbstractWorkload()),
            rectifier=Rectifier(),
            stop_when_finished=False,
        ).run()
        assert rectified.harvested_j < raw.harvested_j

    def test_result_summary_readable(self):
        workload = AbstractWorkload(total_units=1, instructions_per_unit=100)
        result = SystemSimulator(
            constant_trace(1e-6, 1.0), build_oracle(workload)
        ).run()
        text = result.summary()
        assert "oracle" in text
        assert "FP=" in text

    def test_extras_carried_through(self):
        trace = constant_trace(100e-6, 0.05)
        platform = build_nvp(AbstractWorkload())
        result = SystemSimulator(trace, platform, stop_when_finished=False).run()
        assert "volatile_at_end" in result.extras


class TestPresets:
    def test_capacitor_sizes(self):
        assert nvp_capacitor().capacitance_f == pytest.approx(150e-9)
        assert supercap().capacitance_f == pytest.approx(47e-6)
        assert checkpoint_capacitor().capacitance_f == pytest.approx(4.7e-6)

    def test_supercap_models_published_losses(self):
        cap = supercap()
        assert cap.min_charge_current_a == pytest.approx(20e-6)
        assert cap.leak_resistance_ohm <= 1e6

    def test_nvp_capacitor_is_low_loss(self):
        cap = nvp_capacitor()
        assert cap.min_charge_current_a == 0.0
        assert cap.leak_resistance_ohm > supercap().leak_resistance_ohm

    def test_builders_return_labelled_platforms(self):
        assert build_nvp(AbstractWorkload()).label == "nvp"
        assert build_wait_compute(AbstractWorkload()).label == "wait-compute"
        assert build_checkpoint(AbstractWorkload()).label == "sw-checkpoint"
        assert build_oracle(AbstractWorkload()).label == "oracle"

    def test_standard_rectifier_parameters(self):
        rect = standard_rectifier()
        assert rect.eta_max == pytest.approx(0.85)
        assert rect.efficiency(1e-7) == 0.0  # below cut-in


class TestTickReport:
    def test_defaults(self):
        report = TickReport("off")
        assert report.instructions == 0
