"""Tests for folding sweep outcomes into the results trajectory."""

import json

from repro.exp import ExperimentSpec, SweepRunner
from repro.exp.report import (
    outcome_payload,
    outcome_table,
    render_outcome,
    write_results,
)

FAST = {"source": "wristwatch", "duration_s": 0.2, "seed": 11}


def _spec_and_outcome(axes=None):
    spec = ExperimentSpec(
        name="report-test",
        description="report folding",
        base=FAST,
        axes=axes or {"capacitance_f": [68e-9, 150e-9]},
    )
    return spec, SweepRunner().run(spec.expand())


class TestOutcomeTable:
    def test_headers_and_rows(self):
        _, outcome = _spec_and_outcome()
        headers, rows = outcome_table(outcome)
        assert headers[:2] == ["point", "status"]
        assert "FP" in headers
        assert len(rows) == 2
        assert all(row[1] == "ok" for row in rows)

    def test_failed_rows_carry_error(self):
        spec, _ = _spec_and_outcome()
        bad = spec.expand()[0] | {"nvp": {"technology": "SRAM"}}
        outcome = SweepRunner().run([bad])
        _, rows = outcome_table(outcome)
        assert rows[0][1] == "failed"
        assert "volatile" in rows[0][2]


class TestPayload:
    def test_matches_benchmark_results_shape(self):
        spec, outcome = _spec_and_outcome()
        payload = outcome_payload(spec, outcome)
        # The exact shape benchmarks/common.py writes.
        assert payload["experiment"] == "report-test"
        assert payload["description"] == "report folding"
        table = payload["tables"][0]
        assert set(table) == {"title", "columns", "rows"}
        manifest = payload["manifest"]
        assert manifest["command"] == "sweep:report-test"
        assert manifest["duration_s"] == outcome.wall_s
        assert manifest["config"]["axes"] == {
            "capacitance_f": [68e-9, 150e-9]
        }

    def test_sweep_accounting_block(self):
        spec, outcome = _spec_and_outcome()
        sweep = outcome_payload(spec, outcome)["sweep"]
        assert sweep["points"] == 2
        assert sweep["executed"] == 2
        assert sweep["cached"] == 0
        assert sweep["failed"] == 0
        assert [run["index"] for run in sweep["runs"]] == [0, 1]
        assert all(len(run["key"]) == 64 for run in sweep["runs"])


class TestWriteResults:
    def test_writes_named_json(self, tmp_path):
        spec, outcome = _spec_and_outcome()
        path = write_results(spec, outcome, str(tmp_path / "results"))
        assert path.endswith("report-test.json")
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["experiment"] == "report-test"
        assert payload["sweep"]["points"] == 2


class TestRender:
    def test_render_contains_table_and_summary(self):
        _, outcome = _spec_and_outcome()
        text = render_outcome(outcome, title="demo")
        assert text.startswith("demo")
        assert "point" in text
        assert "sweep: 2 point(s)" in text
