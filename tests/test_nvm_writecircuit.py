"""Unit tests for the self-write-termination circuit model."""

import pytest

from repro.nvm.retention import LinearPolicy, LogPolicy, UniformPolicy
from repro.nvm.writecircuit import SelfTerminatingWriteCircuit

DAY = 86_400.0


@pytest.fixture
def circuit():
    return SelfTerminatingWriteCircuit()


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            SelfTerminatingWriteCircuit(current_levels=1)
        with pytest.raises(ValueError):
            SelfTerminatingWriteCircuit(counter_bits=0)
        with pytest.raises(ValueError):
            SelfTerminatingWriteCircuit(counter_clock_hz=0)

    def test_overhead_under_published_bound(self, circuit):
        """The published figure is < 200 transistors per sub-array."""
        assert circuit.overhead_transistors < 200

    def test_pulse_quantum(self, circuit):
        assert circuit.pulse_quantum_s == pytest.approx(0.5e-9)
        assert circuit.max_pulse_s == pytest.approx(15 * 0.5e-9)


class TestWritePlans:
    def test_plan_has_one_entry_per_bit(self, circuit):
        report = circuit.plan_word_write(UniformPolicy(DAY), word_bits=16)
        assert len(report.bit_current_a) == 16
        assert len(report.bit_pulse_s) == 16

    def test_pulses_on_counter_grid(self, circuit):
        report = circuit.plan_word_write(LinearPolicy(1e-3, DAY))
        for pulse in report.bit_pulse_s:
            quanta = pulse / circuit.pulse_quantum_s
            assert quanta == pytest.approx(round(quanta))
            assert pulse <= circuit.max_pulse_s

    def test_relaxed_policies_cost_less(self, circuit):
        precise = circuit.plan_word_write(UniformPolicy(DAY))
        linear = circuit.plan_word_write(LinearPolicy(1e-3, DAY))
        log = circuit.plan_word_write(LogPolicy(1e-3, DAY))
        assert log.word_energy_j < linear.word_energy_j < precise.word_energy_j

    def test_uniform_policy_uses_one_current(self, circuit):
        report = circuit.plan_word_write(UniformPolicy(DAY))
        assert len(set(report.bit_current_a)) == 1

    def test_msb_current_at_least_lsb_current(self, circuit):
        report = circuit.plan_word_write(LinearPolicy(1e-3, DAY))
        assert report.bit_current_a[-1] >= report.bit_current_a[0]

    def test_latency_is_longest_pulse_plus_termination(self, circuit):
        report = circuit.plan_word_write(LinearPolicy(1e-3, DAY))
        assert report.word_latency_s == pytest.approx(
            max(report.bit_pulse_s) + circuit.pulse_quantum_s
        )

    def test_quantisation_never_undershoots_current(self, circuit):
        """Quantised currents must meet-or-exceed the ideal requirement
        (except at the very top level, which is the max by construction)."""
        from repro.nvm.sttram import write_current

        policy = LinearPolicy(1e-3, DAY)
        report = circuit.plan_word_write(policy)
        for bit in range(16):
            ideal = write_current(policy.retention_s(bit, 16), report.bit_pulse_s[bit])
            assert report.bit_current_a[bit] >= ideal * 0.999

    def test_more_counter_bits_allow_longer_pulses(self):
        coarse = SelfTerminatingWriteCircuit(counter_bits=3)
        fine = SelfTerminatingWriteCircuit(counter_bits=6)
        assert fine.max_pulse_s > coarse.max_pulse_s
