"""Tests for selective register approximation (the per-register AC bit)."""

import numpy as np
import pytest

from repro.core.config import NVPConfig
from repro.core.nvp import NVPPlatform
from repro.harvest.sources import square_trace
from repro.nvm.retention import UniformPolicy
from repro.nvm.technology import STT_MRAM
from repro.storage.capacitor import Capacitor, ChargeEfficiency
from repro.system.simulator import SystemSimulator
from repro.workloads.suite import build_kernel, expected_stream, make_functional_workload


def lossless_cap(capacitance=22e-9):
    return Capacitor(
        capacitance,
        v_max_v=3.3,
        leak_resistance_ohm=1e18,
        efficiency=ChargeEfficiency(1.0, 1.0, 0.0, 1.0),
    )


#: Aggressive uniform relaxation: every cell's retention is far below
#: the ~10 ms outages of the test trace, so restored registers are
#: essentially random unless protected.
HOT_POLICY = UniformPolicy(100e-6)

TRACE = dict(high_w=800e-6, low_w=0.0, period_s=0.011, duty=0.1, duration_s=10.0)


def run_sobel(approx_registers, seed=3):
    build = build_kernel("sobel", size=8)
    workload = make_functional_workload(build, frames=2)
    config = NVPConfig(
        technology=STT_MRAM,
        retention_policy=HOT_POLICY,
        approx_registers=approx_registers,
        label="nvp-approx",
    )
    platform = NVPPlatform(workload, lossless_cap(), config, seed=seed)
    trace = square_trace(**TRACE)
    try:
        result = SystemSimulator(trace, platform).run()
    except RuntimeError:
        return None, None, None  # corrupted control flow wedged the program
    outputs = np.array(workload.outputs, dtype=np.uint16)
    return result, outputs, build


class TestConfigValidation:
    def test_register_indices_checked(self):
        with pytest.raises(ValueError):
            NVPConfig(approx_registers=(8,))
        NVPConfig(approx_registers=())
        NVPConfig(approx_registers=(4, 5))


class TestSelectiveApproximation:
    def test_no_ac_registers_is_always_exact(self):
        """With the AC mask empty, even absurdly relaxed storage
        restores exact register values — and the kernel's outputs stay
        bit-exact across many power cycles."""
        result, outputs, build = run_sobel(approx_registers=())
        assert result is not None and result.completed
        assert result.backups >= 2
        assert np.array_equal(outputs, expected_stream(build, frames=2))

    def test_fully_approximate_registers_break_something(self):
        """With every register AC-marked under the same policy, the
        restored state is garbage: the run either wedges, fails to
        finish, or produces wrong outputs."""
        wrong = 0
        for seed in (1, 2, 3):
            result, outputs, build = run_sobel(
                approx_registers=None, seed=seed
            )
            if result is None or not result.completed:
                wrong += 1
                continue
            if not np.array_equal(outputs, expected_stream(build, frames=2)):
                wrong += 1
        assert wrong >= 2  # corruption is the norm, not the exception

    def test_protection_costs_no_backup_energy(self):
        """The AC mask is a restore-side policy: backup energy is
        identical either way (the image is written the same)."""
        def backup_cost(approx):
            config = NVPConfig(
                technology=STT_MRAM,
                retention_policy=HOT_POLICY,
                approx_registers=approx,
            )
            build = build_kernel("crc", length=16)
            workload = make_functional_workload(build, frames=1)
            platform = NVPPlatform(workload, lossless_cap(), config, seed=0)
            return platform.controller.worst_case_backup_energy_j()

        assert backup_cost(()) == pytest.approx(backup_cost(None))
