"""Tests for the live sweep monitor behind ``repro sweep --live``."""

import io

from repro.obs import SweepMonitor
from repro.obs import events as ev
from repro.obs.events import Event, EventBus


def begin(monitor, total=4, jobs=2, t=100.0):
    monitor.on_event(
        Event(ev.SWEEP_BEGIN, t, 0, {"total": total, "jobs": jobs})
    )


def point(monitor, t, status="ok", pid=None, wall_s=0.0, cpu_s=0.0,
          rss=0.0, **extra):
    data = {"status": status, "wall_s": wall_s, "cpu_s": cpu_s,
            "peak_rss_kb": rss, **extra}
    if pid is not None:
        data["pid"] = pid
    monitor.on_event(Event(ev.SWEEP_POINT, t, 0, data))


def end(monitor, t):
    monitor.on_event(Event(ev.SWEEP_END, t, 0, {}))


class TestAccounting:
    def test_counts_and_hit_rate(self):
        monitor = SweepMonitor(stream=io.StringIO(), interactive=False)
        begin(monitor)
        point(monitor, 101.0, status="cached")
        point(monitor, 102.0, status="ok", pid=7, wall_s=1.0)
        point(monitor, 103.0, status="failed")
        assert (monitor.done, monitor.ok, monitor.cached,
                monitor.failed) == (3, 1, 1, 1)
        assert monitor.hit_rate == 1 / 3

    def test_eta_paces_on_executed_points_only(self):
        monitor = SweepMonitor(stream=io.StringIO(), interactive=False)
        begin(monitor, total=4, t=100.0)
        point(monitor, 101.0, status="cached")
        # Cached points give no pace: no estimate yet.
        assert monitor.eta_s is None
        point(monitor, 102.0, status="ok", pid=1, wall_s=2.0)
        # 1 executed in 2 s elapsed, 2 remaining -> ~4 s.
        assert monitor.eta_s == 4.0
        point(monitor, 103.0, status="ok", pid=1, wall_s=1.0)
        point(monitor, 104.0, status="ok", pid=1, wall_s=1.0)
        assert monitor.eta_s == 0.0

    def test_worker_utilization(self):
        monitor = SweepMonitor(stream=io.StringIO(), interactive=False)
        begin(monitor, total=2, jobs=2, t=0.0)
        point(monitor, 2.0, status="ok", pid=1, wall_s=2.0)
        point(monitor, 2.0, status="ok", pid=2, wall_s=2.0)
        # 4 busy seconds over 2 s x 2 jobs = fully utilized.
        assert monitor.utilization == 1.0
        assert len(monitor.worker_busy) == 2

    def test_resource_rollup(self):
        monitor = SweepMonitor(stream=io.StringIO(), interactive=False)
        begin(monitor)
        point(monitor, 101.0, status="ok", pid=1, cpu_s=1.5, rss=500.0)
        point(monitor, 102.0, status="ok", pid=2, cpu_s=0.5, rss=900.0)
        assert monitor.cpu_s == 2.0
        assert monitor.peak_rss_kb == 900.0

    def test_missing_fields_degrade_not_crash(self):
        # A dead worker's point event may carry almost nothing.
        monitor = SweepMonitor(stream=io.StringIO(), interactive=False)
        begin(monitor)
        monitor.on_event(Event(ev.SWEEP_POINT, 101.0, 0, {}))
        assert monitor.done == 1
        assert monitor.failed == 1  # unknown status counts as failed
        assert "1 failed" in monitor.render()


class TestRendering:
    def test_interactive_redraws_in_place(self):
        stream = io.StringIO()
        monitor = SweepMonitor(stream=stream, interactive=True)
        begin(monitor, total=1)
        point(monitor, 101.0, status="ok", pid=1, wall_s=1.0)
        end(monitor, 101.0)
        out = stream.getvalue()
        assert "\r\x1b[2K" in out
        assert out.count("\n") == 2  # only the final draw breaks lines
        assert "live    :" in out

    def test_non_tty_is_line_buffered_plain(self):
        stream = io.StringIO()
        monitor = SweepMonitor(stream=stream, interactive=False)
        begin(monitor, total=2)
        point(monitor, 101.0, status="ok", pid=1, wall_s=1.0)
        end(monitor, 101.0)
        out = stream.getvalue()
        assert "\r" not in out and "\x1b" not in out
        assert out.endswith("\n")
        assert len(out.splitlines()) == 3  # begin, point, final summary

    def test_interactive_autodetects_from_stream(self):
        assert SweepMonitor(stream=io.StringIO()).interactive is False

        class FakeTty(io.StringIO):
            def isatty(self):
                return True

        assert SweepMonitor(stream=FakeTty()).interactive is True

    def test_render_truncates_to_width(self):
        monitor = SweepMonitor(stream=io.StringIO(), interactive=False,
                               width=40)
        begin(monitor, total=100)
        for index in range(9):
            point(monitor, 101.0 + index, status="ok", pid=1, wall_s=0.1)
        assert len(monitor.render()) <= 40

    def test_summary_line_contents(self):
        monitor = SweepMonitor(stream=io.StringIO(), interactive=False)
        begin(monitor, total=2, jobs=1, t=0.0)
        point(monitor, 1.0, status="cached")
        point(monitor, 2.0, status="ok", pid=1, wall_s=1.0, cpu_s=0.8,
              rss=2048.0)
        line = monitor.summary_line()
        assert "2 point(s)" in line
        assert "cache hit 50%" in line
        assert "cpu 0.80s" in line
        assert "peak rss 2.0 MB" in line


class TestBusIntegration:
    def test_attach_subscribes_to_sweep_events_only(self):
        bus = EventBus()
        stream = io.StringIO()
        monitor = SweepMonitor(stream=stream, interactive=False).attach(bus)
        bus.emit(ev.SWEEP_BEGIN, 100.0, total=1, jobs=1)
        bus.emit(ev.TICK, 100.5, state="run")  # ignored
        bus.emit(ev.SWEEP_POINT, 101.0, status="ok", pid=1, wall_s=1.0)
        bus.emit(ev.SWEEP_END, 101.0)
        assert monitor.done == 1
        assert monitor._finished is True

    def test_runner_drives_monitor_end_to_end(self):
        from repro.exp import ExperimentSpec, SweepRunner

        bus = EventBus()
        stream = io.StringIO()
        monitor = SweepMonitor(stream=stream, interactive=False).attach(bus)
        spec = ExperimentSpec(
            name="mon",
            base={"source": "wristwatch", "duration_s": 0.2, "seed": 5},
            axes={"seed": [1, 2]},
        )
        SweepRunner(bus=bus).run(spec.expand())
        assert monitor.done == monitor.total == 2
        assert monitor.ok == 2
        assert "2 ok" in stream.getvalue()


def make_snapshot(t_s=0.1, states=None, final_devices=0, total=4,
                  storm=False, final=False):
    snap = {
        "schema": 1,
        "tick": int(t_s * 1000),
        "t_s": t_s,
        "dt_s": 1e-4,
        "devices": {"total": total, "live": total - final_devices,
                    "passive": 0, "final": final_devices},
        "states": dict(states or {"off": total}),
        "energy_j": {"count": total, "p05": 1e-8, "p50": 2e-8,
                     "p95": 4e-8},
        "progress": {"forward_progress": 1234, "run_s_total": 0.01,
                     "run_rate": 0.1},
        "counters": {"backups": 3, "restores": 2, "ticks_batched": 0},
        "outage": {"fraction": 0.75 if storm else 0.0,
                   "threshold_w": 33e-6, "storm": storm},
    }
    if final:
        snap["final"] = True
    return snap


class TestFleetMonitor:
    def drive(self, monitor, samples=3, total=4):
        from repro.obs import events as ev

        monitor.on_event(Event(
            ev.FLEET_BEGIN, 0.0, 0, {"devices": total, "dt_s": 1e-4}
        ))
        for i in range(samples):
            monitor.on_event(Event(
                ev.FLEET_SAMPLE, 0.1 * (i + 1), 0,
                {"snapshot": make_snapshot(
                    t_s=0.1 * (i + 1), storm=(i == 1), total=total
                )},
            ))
        for _ in range(total):
            monitor.on_event(Event(ev.FLEET_DEVICE, 0.4, 0, {}))
        monitor.on_event(Event(
            ev.FLEET_END, 0.4, 0, {"devices": total, "ticks": 4000}
        ))

    def test_non_tty_is_line_buffered_plain(self):
        from repro.obs.summary import FleetMonitor

        stream = io.StringIO()
        monitor = FleetMonitor(stream=stream)
        assert monitor.interactive is False  # StringIO is not a tty
        self.drive(monitor)
        out = stream.getvalue()
        assert "\x1b" not in out and "\r" not in out
        lines = out.splitlines()
        # begin + 3 samples + final summary; device events are silent.
        assert len(lines) == 5
        assert lines[-1].startswith("fleet   :")
        assert "4000 tick(s)" in lines[-1]
        assert "storm samples 1/3" in lines[-1]

    def test_interactive_redraws_in_place(self):
        from repro.obs.summary import FleetMonitor

        stream = io.StringIO()
        monitor = FleetMonitor(stream=stream, interactive=True, width=80)
        self.drive(monitor)
        out = stream.getvalue()
        assert out.count("\r\x1b[2K") == 5
        assert out.endswith("\n")
        for chunk in out.split("\r\x1b[2K")[1:]:
            assert len(chunk.splitlines()[0]) <= 80

    def test_render_contents(self):
        from repro.obs.summary import FleetMonitor

        monitor = FleetMonitor(stream=io.StringIO())
        self.drive(monitor)
        monitor.snapshot = make_snapshot(
            states={"run": 2, "off": 1, "final": 1},
            final_devices=1, storm=True,
        )
        line = monitor.render()
        assert "run:2" in line and "off:1" in line and "final:1" in line
        assert "STORM" in line
        assert "1/4 done" in line
        assert "E p50 2e-08J" in line

    def test_state_bar_is_proportional_and_fixed_width(self):
        from repro.obs.summary import FleetMonitor

        monitor = FleetMonitor(stream=io.StringIO(), bar_cells=20)
        monitor.snapshot = make_snapshot(
            states={"run": 10, "off": 10}, total=20
        )
        bar = monitor.state_bar()
        assert len(bar) == 20
        assert bar.count("#") == 10 and bar.count("o") == 10
        # Rare states keep at least one cell.
        monitor.snapshot = make_snapshot(
            states={"run": 1, "off": 99}, total=100
        )
        bar = monitor.state_bar()
        assert len(bar) == 20
        assert bar.count("#") >= 1

    def test_before_any_sample(self):
        from repro.obs import events as ev
        from repro.obs.summary import FleetMonitor

        stream = io.StringIO()
        monitor = FleetMonitor(stream=stream)
        monitor.on_event(Event(
            ev.FLEET_BEGIN, 0.0, 0, {"devices": 7, "dt_s": 1e-4}
        ))
        assert "7 device(s) starting" in stream.getvalue()

    def test_attach_subscribes_to_fleet_events_only(self):
        from repro.obs import events as ev
        from repro.obs.summary import FleetMonitor

        bus = EventBus()
        monitor = FleetMonitor(stream=io.StringIO()).attach(bus)
        assert bus.wants(ev.FLEET_SAMPLE)
        assert bus.wants(ev.FLEET_BEGIN)
        assert not bus.wants(ev.SIM_BEGIN)
        bus.emit(ev.FLEET_BEGIN, devices=2, dt_s=1e-4)
        assert monitor.devices == 2
