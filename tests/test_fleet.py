"""Fleet subsystem: spec expansion, cache wiring, reports, CLI."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.exp.cache import ResultCache
from repro.exp.spec import config_hash, resolve_config
from repro.fleet import (
    DEVICE_OFFSET_KEY,
    FleetArrays,
    FleetSpec,
    device_config_hash,
    fleet_summary,
    render_fleet_summary,
    resolve_device_config,
    run_fleet,
)
from repro.storage.capacitor import Capacitor
from repro.storage.ideal import IdealStorage


def make_spec(**overrides):
    data = {
        "name": "testfleet",
        "base": {"source": "wristwatch", "duration_s": 0.2},
        "axes": {"platform": ["nvp", "checkpoint"]},
    }
    data.update(overrides)
    return FleetSpec.from_dict(data)


class TestDeviceConfig:
    def test_offset_defaults_to_zero(self):
        config = resolve_device_config({"platform": "nvp"})
        assert config[DEVICE_OFFSET_KEY] == 0.0

    def test_offset_validated_against_duration(self):
        with pytest.raises(ValueError):
            resolve_device_config(
                {"platform": "nvp", "duration_s": 1.0, DEVICE_OFFSET_KEY: 1.0}
            )
        with pytest.raises(ValueError):
            resolve_device_config({DEVICE_OFFSET_KEY: -0.5})

    def test_unknown_keys_still_rejected(self):
        with pytest.raises(ValueError):
            resolve_device_config({"platfrom": "nvp"})

    def test_zero_offset_hashes_like_plain_sweep_point(self):
        """Offset-0 fleet devices share sweep cache entries."""
        raw = {"platform": "checkpoint", "duration_s": 0.5}
        device = resolve_device_config(dict(raw))
        assert device_config_hash(device) == config_hash(resolve_config(raw))

    def test_nonzero_offset_hashes_differently(self):
        plain = resolve_device_config({"platform": "nvp"})
        shifted = resolve_device_config(
            {"platform": "nvp", DEVICE_OFFSET_KEY: 0.3}
        )
        assert device_config_hash(plain) != device_config_hash(shifted)


class TestFleetSpec:
    def test_grid_expansion_with_replicas(self):
        spec = make_spec(replicas=3, stagger_s=0.05)
        devices = spec.devices()
        assert spec.n_devices == len(devices) == 6
        # Replicas are innermost: seeds bump, offsets stagger.
        first_point = devices[:3]
        assert [d["platform_seed"] for d in first_point] == [0, 1, 2]
        assert [d[DEVICE_OFFSET_KEY] for d in first_point] == [
            0.0, 0.05, 0.1,
        ]
        assert [d["label"] for d in first_point] == [
            "platform='nvp'#r0", "platform='nvp'#r1", "platform='nvp'#r2",
        ]

    def test_zip_mode_requires_equal_lengths(self):
        with pytest.raises(ValueError):
            make_spec(mode="zip", axes={
                "platform": ["nvp", "wait"],
                "capacitance_f": [1e-7],
            })

    def test_offset_is_a_valid_axis(self):
        spec = make_spec(axes={DEVICE_OFFSET_KEY: [0.0, 0.05, 0.1]})
        offsets = [d[DEVICE_OFFSET_KEY] for d in spec.devices()]
        assert offsets == [0.0, 0.05, 0.1]

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ValueError):
            FleetSpec.from_dict({"name": "x", "replica": 2})

    def test_deterministic_expansion(self):
        a = [device_config_hash(d) for d in make_spec(replicas=2).devices()]
        b = [device_config_hash(d) for d in make_spec(replicas=2).devices()]
        assert a == b


class TestSoAContract:
    def test_capacitor_roundtrip(self):
        cap = Capacitor(capacitance_f=47e-6, v_max_v=5.0)
        cap.step(5e-3, 0.0, 1e-4)
        state = cap.soa_state()
        params = cap.soa_params()
        assert params["capacitance_f"] == 47e-6
        cap.soa_restore(*state)
        assert cap.soa_state() == state

    def test_ideal_storage_params_are_identity_chain(self):
        ideal = IdealStorage(capacity_j=1e-3)
        params = ideal.soa_params()
        assert params["capacitance_f"] == 1.0
        assert params["eta_peak"] == params["eta_floor"] == 1.0
        assert params["leak_ohm"] == float("inf")

    def test_charge_tick_matches_charge_many(self):
        """The vectorized step IS charge_many, elementwise."""
        cap = Capacitor(capacitance_f=150e-9, v_max_v=3.3)
        twin = Capacitor(capacitance_f=150e-9, v_max_v=3.3)
        arrays = FleetArrays(1, 1e-4)
        arrays.set_params(0, cap.soa_params(), base=0)
        arrays.load_row(0, cap, target_j=float("inf"))
        rng = np.random.default_rng(5)
        powers = rng.uniform(0.0, 100e-6, size=200)
        powers[50:60] = 0.0
        for p in powers:
            arrays.charge_tick(np.array([p]))
            twin.charge_many(np.array([p]), 0, 1, 1e-4, float("inf"))
        arrays.store_row(0, cap)
        assert cap.soa_state() == twin.soa_state()


class TestRunFleet:
    def test_cache_roundtrip(self, tmp_path):
        configs = make_spec().devices()
        cache = ResultCache(str(tmp_path / "cache"))
        first = run_fleet(configs, cache=cache)
        assert first.executed == 2 and first.cached == 0
        second = run_fleet(configs, cache=cache)
        assert second.executed == 0 and second.cached == 2
        for a, b in zip(first.records, second.records):
            assert a.result == b.result

    def test_fleet_point_shares_sweep_cache(self, tmp_path):
        """A sweep-cached point is a fleet cache hit (offset 0)."""
        from repro.exp.runner import SweepRunner

        cache = ResultCache(str(tmp_path / "cache"))
        raw = {"platform": "nvp", "source": "wristwatch",
               "duration_s": 0.2}
        SweepRunner(cache=cache).run([resolve_config(dict(raw))])
        outcome = run_fleet([resolve_device_config(dict(raw))], cache=cache)
        assert outcome.cached == 1 and outcome.executed == 0

    def test_resource_attribution_sums_to_batch(self, tmp_path):
        outcome = run_fleet(make_spec().devices())
        usage = outcome.resource_usage()
        assert usage["workers"] == 1
        total_cpu = sum(r.cpu_s for r in outcome.records)
        assert total_cpu == pytest.approx(usage["cpu_s"])


class TestFleetReport:
    def test_summary_percentiles(self):
        outcome = run_fleet(make_spec(replicas=2).devices())
        summary = fleet_summary(outcome)
        assert summary["n_devices"] == 4
        assert 0.0 <= summary["survival_fraction"] <= 1.0
        block = summary["metrics"]["forward_progress"]
        assert block["min"] <= block["p5"] <= block["p50"]
        assert block["p50"] <= block["p95"] <= block["max"]
        rendered = render_fleet_summary(summary, title="t")
        assert "forward_progress" in rendered

    def test_empty_results_safe(self):
        from repro.exp.runner import SweepOutcome

        summary = fleet_summary(SweepOutcome())
        assert summary["n_devices"] == 0
        assert summary["metrics"] == {}


class TestFleetCli:
    @pytest.fixture
    def spec_file(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps({
            "name": "cli-fleet",
            "description": "tiny CLI fleet",
            "base": {"source": "wristwatch", "duration_s": 0.2},
            "axes": {"platform": ["nvp", "checkpoint"]},
            "replicas": 2,
            "stagger_s": 0.05,
        }))
        return str(path)

    @pytest.fixture
    def cache_dir(self, tmp_path, monkeypatch):
        path = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(path))
        return path

    def test_run_reports_and_caches(self, spec_file, cache_dir, capsys):
        assert main(["fleet", "run", spec_file]) == 0
        out = capsys.readouterr().out
        assert "4 device(s)" in out
        assert "forward_progress" in out
        assert main(["fleet", "run", spec_file]) == 0
        out = capsys.readouterr().out
        assert "4 hit(s), 0 executed" in out

    def test_replay_device_is_bit_identical(
        self, spec_file, cache_dir, capsys, tmp_path
    ):
        events = tmp_path / "dev.jsonl"
        manifest = tmp_path / "manifest.json"
        assert main([
            "fleet", "run", spec_file, "--replay-device", "1",
            "--events", str(events), "--manifest", str(manifest),
        ]) == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out
        assert events.exists()
        stamped = json.loads(manifest.read_text())
        assert stamped["extra"]["n_devices"] == 4
        assert stamped["extra"]["device_index"] == 1

    def test_results_json_and_ledger_devices(
        self, spec_file, cache_dir, capsys, tmp_path
    ):
        from repro.obs.ledger import RunLedger

        results = tmp_path / "results"
        assert main([
            "fleet", "run", spec_file, "--results-dir", str(results),
        ]) == 0
        payload = json.loads((results / "cli-fleet.json").read_text())
        assert payload["fleet"]["summary"]["n_devices"] == 4
        assert payload["manifest"]["extra"]["n_devices"] == 4
        assert len(payload["fleet"]["devices"]) == 4
        ledger = RunLedger.from_env()
        record = ledger.records(command="fleet")[-1]
        assert record["n_devices"] == 4
        capsys.readouterr()
        assert main(["runs", "list"]) == 0
        out = capsys.readouterr().out
        assert "devices" in out

    def test_json_output(self, spec_file, cache_dir, capsys):
        assert main(["fleet", "run", spec_file, "--json", "--quiet"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_devices"] == 4

    def test_bad_spec_errors_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x", "axes": {"platform": []}}))
        with pytest.raises(SystemExit):
            main(["fleet", "run", str(path)])

    def test_replay_index_out_of_range(self, spec_file, cache_dir):
        with pytest.raises(SystemExit):
            main(["fleet", "run", spec_file, "--replay-device", "99"])
