"""Tests for ML config matching and frequency scaling."""

import numpy as np
import pytest

from repro.harvest.sources import (
    constant_trace,
    rf_trace,
    solar_trace,
    thermal_trace,
    wristwatch_trace,
)
from repro.policy.freqscale import (
    PowerAwareFrequencyPolicy,
    best_frequency,
    frequency_sweep,
)
from repro.policy.mlmatch import (
    ConfigMatcher,
    FEATURE_NAMES,
    trace_features,
    train_from_sweeps,
)
from repro.system.result import SimulationResult


class TestTraceFeatures:
    def test_feature_vector_shape(self):
        features = trace_features(wristwatch_trace(1.0, seed=1))
        assert features.shape == (len(FEATURE_NAMES),)

    def test_constant_trace_features(self):
        features = trace_features(constant_trace(100e-6, 1.0))
        mean, std, p95, duty, rate, mean_outage = features
        assert mean == pytest.approx(100e-6)
        assert std == pytest.approx(0.0)
        assert duty == pytest.approx(1.0)
        assert rate == 0.0

    def test_features_separate_source_classes(self):
        watch = trace_features(wristwatch_trace(2.0, seed=1))
        thermal = trace_features(thermal_trace(2.0, seed=1))
        # The wristwatch has far higher variability and outage rate.
        assert watch[1] / watch[0] > 5 * thermal[1] / thermal[0]


class TestConfigMatcher:
    def test_untrained_predict_rejected(self):
        with pytest.raises(RuntimeError):
            ConfigMatcher().predict(np.zeros(6))

    def test_fit_validation(self):
        matcher = ConfigMatcher()
        with pytest.raises(ValueError):
            matcher.fit([], [])
        with pytest.raises(ValueError):
            matcher.fit([np.zeros(6)], [0, 1])

    def test_knn_on_separable_clusters(self):
        rng = np.random.default_rng(0)
        lo = [np.array([1.0, 0.0]) + rng.normal(0, 0.05, 2) for _ in range(10)]
        hi = [np.array([5.0, 4.0]) + rng.normal(0, 0.05, 2) for _ in range(10)]
        matcher = ConfigMatcher(k=3)
        matcher.fit(lo + hi, [0] * 10 + [1] * 10)
        assert matcher.predict(np.array([1.1, 0.1])) == 0
        assert matcher.predict(np.array([4.9, 3.8])) == 1

    def test_k_validation(self):
        with pytest.raises(ValueError):
            ConfigMatcher(k=0)

    def test_train_from_sweeps_labels_by_argmax(self):
        traces = [
            wristwatch_trace(1.0, seed=s) for s in range(3)
        ] + [thermal_trace(1.0, seed=s) for s in range(3)]

        def evaluate(trace, config_index):
            # Config 0 "wins" on bursty traces, config 1 on smooth ones.
            burstiness = trace.samples_w.std() / trace.mean_power_w
            return -abs(config_index - (0 if burstiness > 1 else 1))

        matcher = train_from_sweeps(traces, n_configs=2, evaluate=evaluate, k=1)
        assert matcher.predict_trace(wristwatch_trace(1.0, seed=99)) == 0
        assert matcher.predict_trace(thermal_trace(1.0, seed=99)) == 1

    def test_train_validation(self):
        with pytest.raises(ValueError):
            train_from_sweeps([], n_configs=0, evaluate=lambda t, i: 0.0)


def fake_result(fp: int) -> SimulationResult:
    result = SimulationResult(label="x", duration_s=1.0)
    result.forward_progress = fp
    return result


class TestFrequencySweep:
    def test_sweep_calls_evaluate_per_frequency(self):
        seen = []

        def evaluate(freq):
            seen.append(freq)
            return fake_result(int(freq))

        sweep = frequency_sweep([1e6, 2e6, 4e6], evaluate)
        assert seen == [1e6, 2e6, 4e6]
        assert len(sweep) == 3

    def test_best_frequency(self):
        sweep = [(1e6, fake_result(10)), (2e6, fake_result(30)), (4e6, fake_result(20))]
        freq, result = best_frequency(sweep)
        assert freq == 2e6
        assert result.forward_progress == 30

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            frequency_sweep([], lambda f: fake_result(0))
        with pytest.raises(ValueError):
            best_frequency([])


class TestFrequencyPolicy:
    def test_untrained_rejected(self):
        with pytest.raises(RuntimeError):
            PowerAwareFrequencyPolicy().recommend(10e-6)

    def test_nearest_income_wins(self):
        policy = PowerAwareFrequencyPolicy()
        policy.add_training_point(10e-6, 0.5e6)
        policy.add_training_point(100e-6, 2e6)
        policy.add_training_point(1000e-6, 8e6)
        assert policy.recommend(12e-6) == 0.5e6
        assert policy.recommend(90e-6) == 2e6
        assert policy.recommend(2000e-6) == 8e6

    def test_log_scale_nearest(self):
        policy = PowerAwareFrequencyPolicy()
        policy.add_training_point(10e-6, 1e6)
        policy.add_training_point(1000e-6, 4e6)
        # 100 uW is geometrically equidistant; 99 uW is closer to 10 uW.
        assert policy.recommend(99e-6) == 1e6

    def test_recommend_for_trace(self):
        policy = PowerAwareFrequencyPolicy()
        policy.add_training_point(25e-6, 1e6)
        trace = wristwatch_trace(1.0, seed=1, mean_power_w=25e-6)
        assert policy.recommend_for_trace(trace) == 1e6

    def test_validation(self):
        policy = PowerAwareFrequencyPolicy()
        with pytest.raises(ValueError):
            policy.add_training_point(0.0, 1e6)
        policy.add_training_point(1e-6, 1e6)
        with pytest.raises(ValueError):
            policy.recommend(0.0)

    def test_table(self):
        policy = PowerAwareFrequencyPolicy()
        policy.add_training_point(1e-6, 1e6)
        assert policy.table() == {1e-6: 1e6}
