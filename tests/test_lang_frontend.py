"""Tests for the NVC lexer and parser."""

import pytest

from repro.lang import ast
from repro.lang.lexer import LexError, tokenize
from repro.lang.parser import ParseError, parse


class TestLexer:
    def test_numbers_and_idents(self):
        tokens = tokenize("foo 42 0x1F _bar9")
        kinds = [(t.kind, t.text) for t in tokens]
        assert kinds == [
            ("ident", "foo"), ("num", "42"), ("num", "0x1F"),
            ("ident", "_bar9"), ("eof", ""),
        ]
        assert tokens[2].value == 31

    def test_keywords_recognised(self):
        tokens = tokenize("int func if else while for return out halt in")
        assert all(t.kind == "kw" for t in tokens[:-1])

    def test_maximal_munch_operators(self):
        tokens = tokenize("<<=>>")
        assert [t.text for t in tokens[:-1]] == ["<<", "=", ">>"]

    def test_comments_stripped(self):
        tokens = tokenize("a // comment with symbols +-*/\nb")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 4]

    def test_unknown_character(self):
        with pytest.raises(LexError, match="line 2"):
            tokenize("ok\n@")

    def test_value_on_non_number_rejected(self):
        with pytest.raises(ValueError):
            tokenize("x")[0].value


class TestParserTopLevel:
    def test_scalar_global(self):
        program = parse("int x;")
        decl = program.globals[0]
        assert decl.name == "x"
        assert decl.size is None
        assert decl.initializer == ()

    def test_initialised_scalar(self):
        assert parse("int x = 5;").globals[0].initializer == (5,)
        assert parse("int x = -3;").globals[0].initializer == (-3,)

    def test_array_with_initialiser(self):
        decl = parse("int a[4] = {1, 2, 3};").globals[0]
        assert decl.size == 4
        assert decl.initializer == (1, 2, 3)
        assert decl.words == 4

    def test_too_many_initialisers(self):
        with pytest.raises(ParseError):
            parse("int a[2] = {1, 2, 3};")

    def test_zero_size_array_rejected(self):
        with pytest.raises(ParseError):
            parse("int a[0];")

    def test_function_params(self):
        fn = parse("func f(a, b) { return a; }").functions[0]
        assert fn.params == ("a", "b")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse("int x; func x() { }")
        with pytest.raises(ParseError, match="duplicate"):
            parse("func f(a, a) { }")

    def test_program_function_lookup(self):
        program = parse("func f() { } func g() { }")
        assert program.function("g").name == "g"
        with pytest.raises(KeyError):
            program.function("h")


class TestParserStatements:
    def wrap(self, body):
        return parse(f"func main() {{ {body} }}").functions[0].body

    def test_assignment(self):
        (stmt,) = self.wrap("x = 1;")
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.target, ast.Var)

    def test_array_assignment(self):
        (stmt,) = self.wrap("a[i + 1] = 2;")
        assert isinstance(stmt.target, ast.Index)

    def test_if_else_chain(self):
        (stmt,) = self.wrap("if (x) { y = 1; } else if (z) { y = 2; } else { y = 3; }")
        assert isinstance(stmt, ast.If)
        inner = stmt.else_body[0]
        assert isinstance(inner, ast.If)
        assert len(inner.else_body) == 1

    def test_for_with_empty_cond(self):
        (stmt,) = self.wrap("for (;;) { halt; }")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.cond, ast.Num)

    def test_local_decl(self):
        statements = self.wrap("int i; i = 1;")
        assert isinstance(statements[0], ast.LocalDecl)

    def test_local_array_rejected(self):
        with pytest.raises(ParseError, match="local arrays"):
            self.wrap("int a[4];")

    def test_call_statement(self):
        (stmt,) = self.wrap("f(1, 2);")
        assert isinstance(stmt, ast.ExprStatement)
        assert isinstance(stmt.value, ast.Call)

    def test_return_forms(self):
        ret_value = self.wrap("return 5;")[0]
        ret_void = self.wrap("return;")[0]
        assert ret_value.value is not None
        assert ret_void.value is None

    @pytest.mark.parametrize(
        "bad",
        ["x = ;", "if x { }", "while () { }", "out 5;", "int;", "5 = x;"],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(ParseError):
            parse(f"func main() {{ {bad} }}")


class TestParserExpressions:
    def expr(self, text):
        (stmt,) = parse(f"func main() {{ x = {text}; }}").functions[0].body
        return stmt.value

    def test_precedence_mul_over_add(self):
        node = self.expr("1 + 2 * 3")
        assert node.op == "+"
        assert node.right.op == "*"

    def test_precedence_shift_below_add(self):
        node = self.expr("1 << 2 + 3")
        assert node.op == "<<"
        assert node.right.op == "+"

    def test_comparison_below_bitor(self):
        node = self.expr("1 | 2 == 3")
        assert node.op == "|"

    def test_logical_lowest(self):
        node = self.expr("1 + 2 && 3 | 4")
        assert isinstance(node, ast.Logical)

    def test_parentheses_override(self):
        node = self.expr("(1 + 2) * 3")
        assert node.op == "*"
        assert node.left.op == "+"

    def test_left_associativity(self):
        node = self.expr("10 - 4 - 3")
        assert node.op == "-"
        assert node.left.op == "-"

    def test_unary_chain(self):
        node = self.expr("!~-x")
        assert node.op == "!"
        assert node.operand.op == "~"
        assert node.operand.operand.op == "-"

    def test_call_with_args(self):
        node = self.expr("f(1, g(2), a[3])")
        assert isinstance(node, ast.Call)
        assert len(node.args) == 3
        assert isinstance(node.args[1], ast.Call)

    def test_in_builtin(self):
        node = self.expr("in()")
        assert isinstance(node, ast.Call)
        assert node.name == "in"
