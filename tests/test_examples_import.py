"""Smoke tests: every example must at least import cleanly.

(Full example runs take tens of seconds each; importing catches the
common failure mode — an example drifting out of sync with the public
API — at negligible cost.)
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None)), f"{path.stem} has no main()"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "wearable_camera",
        "technology_explorer",
        "adaptive_policies",
        "compile_and_profile",
        "timeliness",
    } <= names
