"""Unit tests for the wake-up/restore model."""

import pytest

from repro.core.restore import WakeupModel, wakeup_comparison
from repro.nvm.technology import FERAM, NOR_FLASH, RERAM, TECHNOLOGIES


class TestWakeupModel:
    def test_wakeup_time_includes_readback(self):
        model = WakeupModel(FERAM, state_bits=256, parallelism=64)
        expected = FERAM.wakeup_time_s + 4 * FERAM.read_latency_s
        assert model.wakeup_time_s() == pytest.approx(expected)

    def test_reram_wakes_faster_than_feram(self):
        reram = WakeupModel(RERAM, state_bits=360)
        feram = WakeupModel(FERAM, state_bits=360)
        assert reram.wakeup_time_s() < feram.wakeup_time_s()

    def test_duty_cycle_decreases_with_outage_rate(self):
        model = WakeupModel(FERAM, state_bits=360)
        assert model.effective_duty_cycle(10.0) > model.effective_duty_cycle(100.0)

    def test_duty_cycle_floors_at_zero(self):
        model = WakeupModel(NOR_FLASH, state_bits=360)
        assert model.effective_duty_cycle(1e6) == 0.0

    def test_duty_cycle_with_full_supply_and_no_outages(self):
        model = WakeupModel(FERAM, state_bits=360)
        assert model.effective_duty_cycle(0.0) == pytest.approx(1.0)

    def test_validation(self):
        model = WakeupModel(FERAM, state_bits=360)
        with pytest.raises(ValueError):
            model.effective_duty_cycle(-1.0)
        with pytest.raises(ValueError):
            model.effective_duty_cycle(1.0, supply_duty=1.5)

    def test_flash_overhead_dwarfs_feram(self):
        """Flash wake-up (~100 us) plus slow page writes cost well over
        an order of magnitude more time per outage cycle than FeRAM."""
        flash = WakeupModel(NOR_FLASH, state_bits=360)
        feram = WakeupModel(FERAM, state_bits=360)
        assert flash.overhead_per_cycle_s() > 20 * feram.overhead_per_cycle_s()
        rate = 150.0
        assert feram.effective_duty_cycle(rate) > 0.95
        assert flash.effective_duty_cycle(rate) < feram.effective_duty_cycle(rate)


class TestComparisonTable:
    def test_covers_all_requested_technologies(self):
        nonvolatile = [t for t in TECHNOLOGIES if not t.volatile]
        table = wakeup_comparison(nonvolatile, state_bits=360, outage_rate_hz=150.0)
        assert set(table) == {t.name for t in nonvolatile}
        for row in table.values():
            assert row["wakeup_us"] > 0
            assert 0.0 <= row["duty_cycle"] <= 1.0

    def test_supply_duty_passthrough(self):
        table = wakeup_comparison(
            [FERAM], state_bits=360, outage_rate_hz=0.0, supply_duty=0.4
        )
        assert table["FeRAM"]["duty_cycle"] == pytest.approx(0.4)
