"""Fast-path engine equivalence: fast-forward on vs. off.

The steady-state fast-forward (`docs/performance.md`) promises
*bit-identical* :class:`~repro.system.result.SimulationResult`s against
the exact per-tick loop.  These tests hold it to that promise,
property-style: randomized solar/RF/wristwatch traces and deterministic
outage-heavy square waves, across every platform preset, compared field
by field with strict equality (no ``approx``).
"""

import numpy as np
import pytest

from repro.harvest.rectifier import IDEAL_RECTIFIER, Rectifier
from repro.harvest.sources import (
    rf_trace,
    solar_trace,
    square_trace,
    wristwatch_trace,
)
from repro.obs import events as ev
from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.storage.capacitor import Capacitor, ChargeEfficiency
from repro.storage.ideal import IdealStorage
from repro.system.presets import (
    build_checkpoint,
    build_nvp,
    build_oracle,
    build_wait_compute,
    standard_rectifier,
    supercap,
)
from repro.system.simulator import SystemSimulator
from repro.workloads.base import AbstractWorkload

PLATFORM_BUILDERS = {
    "nvp": build_nvp,
    "wait": build_wait_compute,
    "checkpoint": build_checkpoint,
    "oracle": build_oracle,
}

TRACE_MAKERS = {
    "square_outage": lambda seed: square_trace(400e-6, 0.0, 2.0, 0.08, 4.0),
    "wristwatch": lambda seed: wristwatch_trace(3.0, seed=seed),
    "solar": lambda seed: solar_trace(3.0, mean_power_w=60e-6, seed=seed),
    "rf": lambda seed: rf_trace(3.0, seed=seed),
}


def run_sim(builder, trace, use_fast_forward, stop_when_finished=False,
            rectifier="standard", **sim_kwargs):
    """Build a fresh platform and run one simulation."""
    platform = builder(AbstractWorkload())
    rect = standard_rectifier() if rectifier == "standard" else rectifier
    simulator = SystemSimulator(
        trace,
        platform,
        rectifier=rect,
        stop_when_finished=stop_when_finished,
        use_fast_forward=use_fast_forward,
        **sim_kwargs,
    )
    return simulator.run(), simulator


def assert_identical(fast, slow):
    """Field-by-field strict equality between two results."""
    fast_dict, slow_dict = fast.to_dict(), slow.to_dict()
    assert fast_dict.keys() == slow_dict.keys()
    for key in slow_dict:
        assert fast_dict[key] == slow_dict[key], (
            f"{key}: fast={fast_dict[key]!r} != exact={slow_dict[key]!r}"
        )


class TestFastSlowEquivalence:
    @pytest.mark.parametrize("platform", sorted(PLATFORM_BUILDERS))
    @pytest.mark.parametrize("trace_kind", sorted(TRACE_MAKERS))
    @pytest.mark.parametrize("seed", [1, 17])
    def test_bit_identical_results(self, platform, trace_kind, seed):
        trace = TRACE_MAKERS[trace_kind](seed)
        builder = PLATFORM_BUILDERS[platform]
        fast, _ = run_sim(builder, trace, use_fast_forward=None)
        slow, _ = run_sim(builder, trace, use_fast_forward=False)
        assert_identical(fast, slow)

    @pytest.mark.parametrize("platform", sorted(PLATFORM_BUILDERS))
    def test_bit_identical_when_stopping_at_completion(self, platform):
        trace = wristwatch_trace(3.0, seed=5)
        builder = PLATFORM_BUILDERS[platform]

        def small(workload):
            del workload
            return builder(
                AbstractWorkload(total_units=2, instructions_per_unit=2_000)
            )

        fast, _ = run_sim(small, trace, use_fast_forward=None,
                          stop_when_finished=True)
        slow, _ = run_sim(small, trace, use_fast_forward=False,
                          stop_when_finished=True)
        assert_identical(fast, slow)

    def test_done_tail_is_fast_forwarded(self):
        """After completion the remaining trace is skipped in bulk."""
        trace = wristwatch_trace(3.0, seed=5)

        def small(workload):
            del workload
            return build_nvp(
                AbstractWorkload(total_units=1, instructions_per_unit=1_000)
            )

        fast, sim = run_sim(small, trace, use_fast_forward=None)
        slow, _ = run_sim(small, trace, use_fast_forward=False)
        assert fast.completed
        assert fast.state_time_s.get("done", 0.0) > 0.0
        assert sim.ticks_fast_forwarded > 0
        assert_identical(fast, slow)

    def test_without_rectifier(self):
        trace = square_trace(300e-6, 0.0, 1.0, 0.1, 3.0)
        fast, _ = run_sim(build_nvp, trace, None, rectifier=None)
        slow, _ = run_sim(build_nvp, trace, False, rectifier=None)
        assert_identical(fast, slow)

    def test_nvp_on_ideal_storage(self):
        from repro.core.nvp import NVPPlatform

        trace = wristwatch_trace(2.0, seed=9)

        def ideal_nvp(workload):
            return NVPPlatform(workload, IdealStorage(5e-7), seed=0)

        fast, sim = run_sim(ideal_nvp, trace, None)
        slow, _ = run_sim(ideal_nvp, trace, False)
        assert sim.ticks_fast_forwarded > 0
        assert_identical(fast, slow)

    def test_tick_counters_partition_the_run(self):
        trace = square_trace(400e-6, 0.0, 2.0, 0.08, 3.0)
        fast, sim = run_sim(build_nvp, trace, None)
        assert sim.ticks_fast_forwarded > 0
        assert sim.ticks_batched > 0
        assert (
            sim.ticks_fast_forwarded + sim.ticks_batched + sim.ticks_exact
            == len(trace)
        )
        _, slow_sim = run_sim(build_nvp, trace, False,
                              use_exact_batch=False)
        assert slow_sim.ticks_fast_forwarded == 0
        assert slow_sim.ticks_batched == 0
        assert slow_sim.ticks_exact == len(trace)


class TestBusFallback:
    def test_bus_forces_exact_path_with_identical_result(self):
        """An attached bus falls back to exact ticking, same result."""
        trace = square_trace(400e-6, 0.0, 2.0, 0.08, 3.0)
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        observed, sim = run_sim(build_nvp, trace, use_fast_forward=None,
                                bus=bus)
        assert sim.ticks_fast_forwarded == 0
        assert len(seen) > 0
        plain, _ = run_sim(build_nvp, trace, use_fast_forward=None)
        assert_identical(observed, plain)

    def test_metrics_report_tick_path_split(self):
        trace = square_trace(400e-6, 0.0, 2.0, 0.08, 2.0)
        metrics = MetricsRegistry()
        _, sim = run_sim(build_nvp, trace, use_fast_forward=None,
                         metrics=metrics)
        counter = metrics.counter(
            "sim_ticks", "simulated ticks by engine path",
            labels=("platform", "path"),
        )
        fast = counter.labels(platform="nvp", path="fast_forward").value
        batched = counter.labels(platform="nvp", path="exact_batch").value
        exact = counter.labels(platform="nvp", path="exact").value
        assert fast == sim.ticks_fast_forwarded > 0
        assert batched == sim.ticks_batched > 0
        assert exact == sim.ticks_exact
        assert fast + batched + exact == len(trace)

    def test_metrics_labels_on_forced_exact_path(self):
        trace = square_trace(400e-6, 0.0, 2.0, 0.08, 2.0)
        metrics = MetricsRegistry()
        _, sim = run_sim(build_nvp, trace, use_fast_forward=False,
                         use_exact_batch=False, metrics=metrics)
        counter = metrics.counter(
            "sim_ticks", "simulated ticks by engine path",
            labels=("platform", "path"),
        )
        assert counter.labels(platform="nvp", path="exact").value == len(trace)
        assert counter.labels(platform="nvp", path="fast_forward").value == 0
        assert counter.labels(platform="nvp", path="exact_batch").value == 0
        assert sim.ticks_fast_forwarded == 0
        assert sim.ticks_batched == 0


class TestSynthesizedEventStreams:
    """Both bulk engines must synthesize the exact event stream the
    scalar interpreter emits — `(name, t_s, seq, data)` tuples equal,
    in order, across platforms and sources."""

    @pytest.mark.parametrize("platform", sorted(PLATFORM_BUILDERS))
    @pytest.mark.parametrize("trace_kind", sorted(TRACE_MAKERS))
    def test_streams_bitwise_identical_across_engines(
        self, platform, trace_kind
    ):
        trace = TRACE_MAKERS[trace_kind](3)
        builder = PLATFORM_BUILDERS[platform]

        def stream(fast, batch):
            bus = EventBus()
            log = bus.record(names=ev.NON_TICK_EVENT_NAMES)
            result, _ = run_sim(
                builder, trace, use_fast_forward=fast,
                use_exact_batch=batch, bus=bus, sample_stride=500,
            )
            return [(e.name, e.t_s, e.seq, e.data) for e in log], result

        scalar_events, scalar_result = stream(False, False)
        assert scalar_events
        for fast, batch in ((None, None), (False, None), (None, False)):
            events, result = stream(fast, batch)
            assert events == scalar_events, (fast, batch)
            assert result.to_dict() == scalar_result.to_dict()


class TestChargeManyPrimitive:
    """storage.charge_many == repeated step(p, 0, dt), bitwise."""

    def clone_pair(self, make):
        return make(), make()

    @pytest.mark.parametrize("make", [
        lambda: Capacitor(150e-9, v_initial_v=0.5),
        lambda: Capacitor(
            150e-9,
            v_initial_v=1.0,
            leak_resistance_ohm=20e6,
            efficiency=ChargeEfficiency(
                eta_peak=0.90, eta_floor=0.75, v_opt_v=2.0, v_span_v=3.0
            ),
        ),
        supercap,
        lambda: IdealStorage(5e-7, initial_j=1e-8),
    ])
    def test_matches_step_loop(self, make):
        rng = np.random.default_rng(42)
        powers = (rng.uniform(0.0, 500e-6, size=5000)
                  * rng.integers(0, 2, size=5000)).tolist()
        reference, bulk = self.clone_pair(make)
        for p in powers:
            reference.step(p, 0.0, 1e-4)
        consumed, crossed = bulk.charge_many(powers, 0, len(powers), 1e-4)
        assert consumed == len(powers) and not crossed
        assert bulk.energy_j == reference.energy_j
        assert bulk.total_charged_j == reference.total_charged_j
        assert bulk.total_wasted_j == reference.total_wasted_j
        assert bulk.total_leaked_j == reference.total_leaked_j

    def test_stops_after_crossing_tick(self):
        cap = Capacitor(150e-9)
        target = 2e-8
        powers = [100e-6] * 1000
        consumed, crossed = cap.charge_many(powers, 0, len(powers), 1e-4,
                                            target)
        assert crossed
        assert cap.energy_j >= target
        # The reference loop crosses on the same tick.
        reference = Capacitor(150e-9)
        ticks = 0
        while reference.energy_j < target:
            reference.step(100e-6, 0.0, 1e-4)
            ticks += 1
        assert ticks == consumed
        assert reference.energy_j == cap.energy_j

    def test_respects_window_bounds(self):
        cap = Capacitor(150e-9)
        powers = [100e-6] * 100
        consumed, crossed = cap.charge_many(powers, 10, 20, 1e-4, None)
        assert consumed == 10 and not crossed

    def test_validates_dt(self):
        with pytest.raises(ValueError):
            Capacitor(150e-9).charge_many([1e-6], 0, 1, 0.0)
        with pytest.raises(ValueError):
            IdealStorage(1e-6).charge_many([1e-6], 0, 1, -1.0)


class TestRectifierArrayPath:
    @pytest.mark.parametrize("rect", [
        Rectifier(),
        Rectifier(eta_max=1.0, knee_power_w=0.0, cutin_power_w=0.0),
        IDEAL_RECTIFIER,
    ])
    def test_array_matches_scalar_bitwise(self, rect):
        rng = np.random.default_rng(3)
        samples = np.concatenate([
            rng.uniform(0.0, 100e-6, size=500),
            np.zeros(10),
            np.array([0.5e-6, 1e-6, 2e-6]),  # around the cut-in
        ])
        array_out = rect.output_power_array(samples)
        scalar_out = np.array([rect.output_power(float(p)) for p in samples])
        assert np.array_equal(array_out, scalar_out)

    def test_convert_uses_array_path(self):
        trace = wristwatch_trace(0.2, seed=1)
        rect = standard_rectifier()
        converted = rect.convert(trace)
        assert np.array_equal(
            converted.samples_w, rect.output_power_array(trace.samples_w)
        )


class TestTraceDtype:
    def test_power_trace_guarantees_contiguous_float64(self):
        from repro.harvest.traces import PowerTrace

        trace = PowerTrace([1, 2, 3], 1e-4)
        assert trace.samples_w.dtype == np.float64
        assert trace.samples_w.flags["C_CONTIGUOUS"]
        strided = PowerTrace(
            np.arange(10, dtype=np.float32)[::2], 1e-4
        )
        assert strided.samples_w.dtype == np.float64
        assert strided.samples_w.flags["C_CONTIGUOUS"]


# -- fleet kernel equivalence -------------------------------------------------
#
# The batched fleet kernel (src/repro/fleet/) promises the same
# bit-identity the fast path does: every device of a fleet must
# materialise the exact SimulationResult the single-device engine
# produces on that device's own sub-trace.  Property-tested here over
# every platform preset, every config-expressible source, both
# stop_when_finished modes, and nonzero trace offsets — strict
# equality, no approx.

FLEET_SOURCES = (
    {"source": "wristwatch"},
    {"source": "solar"},
    {"source": "rf"},
    {"source": "thermal"},
    {"source": "hybrid"},
    {"source": "constant", "mean_uw": 30.0},
    {"source": "profile", "profile_index": 2},
)


def fleet_config(platform, source_kw, **overrides):
    from repro.fleet import resolve_device_config

    config = {"platform": platform, "duration_s": 1.0}
    config.update(source_kw)
    config.update(overrides)
    return resolve_device_config(config)


def assert_fleet_identical(fleet_result, config):
    from repro.fleet import replay_device

    single, _ = replay_device(config)
    fast, slow = fleet_result.to_dict(), single.to_dict()
    assert fast == slow, (
        f"fleet result differs from single engine for {config['platform']}"
        f"/{config['source']} offset={config['trace_offset_s']}: "
        f"{ {k: (fast[k], slow[k]) for k in fast if fast[k] != slow[k]} }"
    )


class TestFleetEquivalence:
    @pytest.mark.parametrize("platform", sorted(PLATFORM_BUILDERS))
    @pytest.mark.parametrize(
        "source_kw", FLEET_SOURCES, ids=[s["source"] for s in FLEET_SOURCES]
    )
    @pytest.mark.parametrize("stop_when_finished", [False, True])
    def test_one_device_fleet_matches_engine(
        self, platform, source_kw, stop_when_finished
    ):
        from repro.fleet import FleetKernel

        config = fleet_config(
            platform, source_kw, stop_when_finished=stop_when_finished
        )
        result = FleetKernel([config]).run()[0]
        assert_fleet_identical(result, config)

    def test_mixed_fleet_matches_engine_per_device(self):
        """One heterogeneous kernel: every device exact, all at once."""
        from repro.fleet import FleetKernel

        configs = []
        for platform in sorted(PLATFORM_BUILDERS):
            for source_kw in ({"source": "wristwatch"}, {"source": "rf"}):
                for offset in (0.0, 0.25, 0.4001):
                    configs.append(fleet_config(
                        platform, source_kw, trace_offset_s=offset
                    ))
        # Heterogeneous sizing and seeding in the same kernel pass.
        configs.append(fleet_config(
            "nvp", {"source": "rf"},
            platform_seed=3, capacitance_f=300e-9,
        ))
        configs.append(fleet_config(
            "checkpoint", {"source": "solar"},
            capacitance_f=10e-6, stop_when_finished=True,
        ))
        configs.append(fleet_config(
            "wait", {"source": "solar"}, energy_margin=1.6,
        ))
        results = FleetKernel(configs).run()
        for config, result in zip(configs, results):
            assert_fleet_identical(result, config)

    def test_offset_device_equals_tail_trace_run(self):
        """An offset device IS the single engine on the trace tail."""
        from repro.exp.runner import build_trace
        from repro.fleet import FleetKernel

        config = fleet_config(
            "nvp", {"source": "wristwatch"}, trace_offset_s=0.3
        )
        fleet_result = FleetKernel([config]).run()[0]
        tail = build_trace(config).tail(0.3)
        single, _ = run_sim(
            PLATFORM_BUILDERS["nvp"], tail, use_fast_forward=None
        )
        assert_identical(fleet_result, single)

    def test_fleet_rejects_empty_fleet(self):
        from repro.fleet import FleetKernel

        with pytest.raises(ValueError):
            FleetKernel([])


class TestOffRunPlanDelegation:
    """Regression pin: every dormant-capable platform fast-forwards
    through the one shared loop in system/fastpath.py (the
    deduplicated charge-many fallback), and the fleet kernel drives
    the same OffRunPlan hooks."""

    def test_platforms_delegate_to_shared_offrun_loop(self, monkeypatch):
        from repro.system import fastpath

        calls = []
        original = fastpath.fast_forward_offruns

        def spy(platform, p_in_w, start, stop, dt_s):
            calls.append(type(platform).__name__)
            return original(platform, p_in_w, start, stop, dt_s)

        monkeypatch.setattr(fastpath, "fast_forward_offruns", spy)
        trace = TRACE_MAKERS["square_outage"](0)
        for name in ("nvp", "wait", "checkpoint"):
            run_sim(PLATFORM_BUILDERS[name], trace, use_fast_forward=None)
        assert {"NVPPlatform", "WaitComputePlatform",
                "CheckpointPlatform"} <= set(calls)

    def test_off_plan_exposed_by_all_dormant_platforms(self):
        from repro.system.fastpath import OffRunPlan

        for name in ("nvp", "wait", "checkpoint"):
            platform = PLATFORM_BUILDERS[name](AbstractWorkload())
            plan = platform.off_plan(1e-4)
            assert isinstance(plan, OffRunPlan)
            assert callable(plan.target_j)
            assert callable(plan.on_cross)


class TestCompiledWorkloadRouting:
    """Engine-selection rules for compiled (NV16) workloads.

    The block engine makes these workloads batchable through the isa
    kernels, but observation still wins: an attached tick subscriber
    must force the scalar per-tick loop, bit-identically.  And the
    fleet kernel must route functional devices through the same batch
    path the single-device simulator uses.
    """

    @staticmethod
    def run_functional_sim(builder, trace, **sim_kwargs):
        from repro.workloads.suite import build_kernel, make_functional_workload

        workload = make_functional_workload(build_kernel("fir"), frames=2)
        simulator = SystemSimulator(
            trace,
            builder(workload),
            rectifier=standard_rectifier(),
            **sim_kwargs,
        )
        return simulator.run(), simulator

    def test_observed_run_forces_scalar_ticks(self):
        """A sim.tick subscriber pins compiled workloads to exact ticks."""
        trace = wristwatch_trace(2.0, seed=13)
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        observed, sim = self.run_functional_sim(build_nvp, trace, bus=bus)
        assert sim.ticks_batched == 0
        assert sim.ticks_fast_forwarded == 0
        assert sim.ticks_exact > 0
        assert len(seen) > 0
        plain, unobserved_sim = self.run_functional_sim(build_nvp, trace)
        assert unobserved_sim.ticks_batched > 0
        assert_identical(observed, plain)

    def test_fleet_routes_functional_device_through_batch_path(self):
        from repro.fleet import FleetKernel

        config = fleet_config(
            "nvp", {"source": "wristwatch"},
            duration_s=2.0, kernel="fir", frames=2,
        )
        kernel = FleetKernel([config])
        result = kernel.run()[0]
        assert kernel.ticks_batched > 0
        assert_fleet_identical(result, config)


class TestFleetTelemetryEquivalence:
    """Telemetry is read-only: per-device results stay bit-identical
    with it enabled, and its final snapshot is exactly the fold of the
    per-device exact-engine results — across every preset, source, and
    offset."""

    @staticmethod
    def all_configs():
        configs = []
        for platform in sorted(PLATFORM_BUILDERS):
            for source_kw in FLEET_SOURCES:
                for offset in (0.0, 0.25):
                    configs.append(fleet_config(
                        platform, source_kw, trace_offset_s=offset
                    ))
        return configs

    def test_results_bit_identical_and_aggregates_fold(self):
        from repro.fleet import FleetKernel, FleetTelemetry, replay_device

        configs = self.all_configs()
        telemetry = FleetTelemetry()
        observed = FleetKernel(
            list(configs), telemetry=telemetry
        ).run()
        plain = FleetKernel(list(configs)).run()

        exact = []
        for config, with_tel, without in zip(configs, observed, plain):
            # Telemetry on == telemetry off == single exact engine.
            assert with_tel.to_dict() == without.to_dict()
            single, _ = replay_device(config)
            assert with_tel.to_dict() == single.to_dict()
            exact.append(single)

        snap = telemetry.last
        assert snap["final"] is True
        assert snap["states"] == {"final": len(configs)}
        assert snap["devices"] == {
            "total": len(configs), "live": 0, "passive": 0,
            "final": len(configs),
        }
        # Population aggregates are the fold of the exact engine.
        assert snap["progress"]["forward_progress"] == sum(
            r.forward_progress for r in exact
        )
        assert snap["counters"]["backups"] == sum(r.backups for r in exact)
        assert snap["counters"]["restores"] == sum(
            r.restores for r in exact
        )
        assert snap["progress"]["run_s_total"] == pytest.approx(
            sum(r.state_time_s.get("run", 0.0) for r in exact)
        )

    def test_mid_run_state_counts_partition_the_fleet(self):
        """Every snapshot's state counts sum to the device total."""
        from repro.fleet import FleetKernel, FleetTelemetry
        from repro.obs.events import EventBus

        bus = EventBus()
        snapshots = []
        bus.subscribe(
            lambda event: snapshots.append(event.data["snapshot"]),
            names=(ev.FLEET_SAMPLE,),
        )
        configs = [
            fleet_config("nvp", {"source": "rf"},
                         trace_offset_s=0.1 * i)
            for i in range(4)
        ]
        FleetKernel(configs, bus=bus, telemetry=FleetTelemetry()).run()
        assert len(snapshots) >= 2
        for snap in snapshots:
            assert sum(snap["states"].values()) == len(configs)
            devices = snap["devices"]
            assert devices["final"] == snap["states"].get("final", 0)
            assert devices["live"] + devices["final"] == len(configs)
