"""Unit tests for retention-shaping policies and the failure model."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.nvm.retention import (
    LinearPolicy,
    LogPolicy,
    ParabolaPolicy,
    RetentionPolicy,
    UniformPolicy,
    corrupt_word,
    failure_probability,
    policy_backup_energy_j,
    sample_bit_failures,
)
from repro.nvm.technology import FERAM, STT_MRAM

DAY = 86_400.0
POLICIES = [
    UniformPolicy(DAY),
    LinearPolicy(1e-3, DAY),
    LogPolicy(1e-3, DAY),
    ParabolaPolicy(1e-3, DAY),
]


class TestProfiles:
    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.name)
    def test_profiles_validate(self, policy):
        policy.validate(8)
        policy.validate(16)

    @pytest.mark.parametrize(
        "policy", POLICIES[1:], ids=lambda p: p.name
    )
    def test_msb_gets_full_retention(self, policy):
        assert policy.retention_s(15, 16) == pytest.approx(DAY)

    @pytest.mark.parametrize(
        "policy", POLICIES[1:], ids=lambda p: p.name
    )
    def test_lsb_gets_relaxed_retention(self, policy):
        assert policy.retention_s(0, 16) == pytest.approx(1e-3)

    def test_log_is_most_aggressive_in_the_middle(self):
        linear = LinearPolicy(1e-3, DAY)
        log = LogPolicy(1e-3, DAY)
        parabola = ParabolaPolicy(1e-3, DAY)
        for bit in range(1, 15):
            assert log.retention_s(bit, 16) <= linear.retention_s(bit, 16)
        # Parabola keeps mid bits below linear (conservative shape rises late).
        assert parabola.retention_s(8, 16) < linear.retention_s(8, 16)

    def test_single_bit_word(self):
        assert LinearPolicy(1e-3, DAY).retention_s(0, 1) == pytest.approx(DAY)

    def test_bit_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            LinearPolicy(1e-3, DAY).retention_s(16, 16)

    def test_invalid_span_rejected(self):
        with pytest.raises(ValueError):
            LinearPolicy(DAY, 1e-3)
        with pytest.raises(ValueError):
            LogPolicy(0.0, DAY)

    def test_uniform_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            UniformPolicy(0.0)

    def test_monotonicity_enforced_by_validate(self):
        class Broken(RetentionPolicy):
            name = "broken"

            def retention_s(self, bit, width=16):
                return 10.0 - bit

        with pytest.raises(ValueError, match="monotonic"):
            Broken().validate(4)


class TestFailureModel:
    def test_probability_limits(self):
        assert failure_probability(0.0, 1.0) == 0.0
        assert failure_probability(100.0, 1e-3) == pytest.approx(1.0)

    def test_probability_value(self):
        assert failure_probability(1.0, 1.0) == pytest.approx(1 - math.exp(-1))

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            failure_probability(-1.0, 1.0)
        with pytest.raises(ValueError):
            failure_probability(1.0, 0.0)

    def test_sampling_no_outage_no_failures(self, rng):
        mask = sample_bit_failures(LinearPolicy(1e-3, DAY), 0.0, 16, rng)
        assert mask == 0

    def test_sampling_hits_low_bits_first(self, rng):
        """For a 10 ms outage, LSBs (1 ms retention) almost surely relax
        while MSBs (1 day) almost surely survive."""
        policy = LinearPolicy(1e-3, DAY)
        lsb_failures = 0
        msb_failures = 0
        for _ in range(200):
            mask = sample_bit_failures(policy, 10e-3, 16, rng)
            lsb_failures += mask & 1
            msb_failures += (mask >> 15) & 1
        assert lsb_failures > 190
        assert msb_failures == 0

    def test_corrupt_word_changes_only_relaxed_bits(self, rng):
        value = 0b1010_1100_0101_0011
        for _ in range(50):
            result = corrupt_word(value, 0b1111, rng)
            assert result & ~0b1111 == value & ~0b1111

    def test_corrupt_word_with_empty_mask_is_identity(self, rng):
        assert corrupt_word(0x1234, 0, rng) == 0x1234

    def test_corrupt_word_flips_about_half(self, rng):
        flips = 0
        trials = 400
        for _ in range(trials):
            result = corrupt_word(0, 0b1, rng)
            flips += result & 1
        assert 0.35 < flips / trials < 0.65


class TestPolicyEnergy:
    def test_relaxation_saves_energy(self):
        precise = policy_backup_energy_j(UniformPolicy(STT_MRAM.retention_s), STT_MRAM)
        relaxed = policy_backup_energy_j(LinearPolicy(1e-3, STT_MRAM.retention_s), STT_MRAM)
        assert relaxed < precise

    def test_energy_ordering_log_cheapest(self):
        t_max = STT_MRAM.retention_s
        linear = policy_backup_energy_j(LinearPolicy(1e-3, t_max), STT_MRAM)
        log = policy_backup_energy_j(LogPolicy(1e-3, t_max), STT_MRAM)
        parabola = policy_backup_energy_j(ParabolaPolicy(1e-3, t_max), STT_MRAM)
        assert log < parabola < linear or log < linear  # log always cheapest
        assert log == min(log, linear, parabola)

    def test_uniform_at_nominal_matches_catalog_energy(self):
        energy = policy_backup_energy_j(UniformPolicy(STT_MRAM.retention_s), STT_MRAM, 16)
        assert energy == pytest.approx(16 * STT_MRAM.write_energy_j_per_bit, rel=1e-9)

    def test_non_relaxable_technology_rejects_relaxation(self):
        with pytest.raises(ValueError, match="retention relaxation"):
            policy_backup_energy_j(LinearPolicy(1e-3, FERAM.retention_s), FERAM)

    def test_non_relaxable_technology_accepts_uniform_nominal(self):
        energy = policy_backup_energy_j(UniformPolicy(FERAM.retention_s), FERAM, 16)
        assert energy == pytest.approx(16 * FERAM.write_energy_j_per_bit, rel=1e-9)


@given(
    outage=st.floats(min_value=0.0, max_value=1e6),
    retention=st.floats(min_value=1e-9, max_value=1e9),
)
def test_failure_probability_in_unit_interval(outage, retention):
    probability = failure_probability(outage, retention)
    assert 0.0 <= probability <= 1.0
