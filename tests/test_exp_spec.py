"""Tests for declarative experiment specs and config hashing."""

import json

import pytest

from repro.exp.spec import (
    CONFIG_DEFAULTS,
    ExperimentSpec,
    canonical_json,
    config_hash,
    resolve_config,
)


class TestResolveConfig:
    def test_defaults_fill_in(self):
        resolved = resolve_config({})
        assert resolved["platform"] == "nvp"
        assert resolved["source"] == "wristwatch"
        assert set(resolved) == set(CONFIG_DEFAULTS)

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown config key"):
            resolve_config({"capacitance": 1e-6})

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError, match="unknown platform"):
            resolve_config({"platform": "fpga"})

    def test_unknown_source_rejected(self):
        with pytest.raises(ValueError, match="unknown source"):
            resolve_config({"source": "windmill"})

    def test_unknown_nvp_key_rejected(self):
        with pytest.raises(ValueError, match="unknown NVPConfig key"):
            resolve_config({"nvp": {"clock_mhz": 8}})

    def test_dotted_key_reaches_nvp(self):
        resolved = resolve_config({"nvp.backup_margin": 2.0})
        assert resolved["nvp"]["backup_margin"] == 2.0

    def test_stop_when_finished_follows_kernel(self):
        assert resolve_config({})["stop_when_finished"] is False
        assert resolve_config({"kernel": "crc"})["stop_when_finished"] is True
        assert resolve_config(
            {"kernel": "crc", "stop_when_finished": False}
        )["stop_when_finished"] is False

    def test_does_not_alias_caller_dicts(self):
        nvp = {"state_bits": 256}
        resolved = resolve_config({"nvp": nvp, "nvp.ecc": True})
        assert resolved["nvp"]["ecc"] is True
        assert "ecc" not in nvp

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            resolve_config({"duration_s": 0})


class TestConfigHash:
    def test_stable_across_key_order(self):
        a = resolve_config({"seed": 3, "duration_s": 0.5})
        b = resolve_config({"duration_s": 0.5, "seed": 3})
        assert config_hash(a) == config_hash(b)

    def test_differs_when_value_changes(self):
        a = resolve_config({"seed": 3})
        b = resolve_config({"seed": 4})
        assert config_hash(a) != config_hash(b)

    def test_canonical_json_rejects_objects(self):
        with pytest.raises(TypeError):
            canonical_json({"x": object()})

    def test_hash_is_hex64(self):
        digest = config_hash(resolve_config({}))
        assert len(digest) == 64
        int(digest, 16)


class TestExpand:
    def test_grid_is_cartesian_product_last_axis_fastest(self):
        spec = ExperimentSpec(
            name="g",
            axes={"platform": ["nvp", "oracle"], "seed": [1, 2, 3]},
        )
        configs = spec.expand()
        assert len(configs) == 6
        assert [(c["platform"], c["seed"]) for c in configs] == [
            ("nvp", 1), ("nvp", 2), ("nvp", 3),
            ("oracle", 1), ("oracle", 2), ("oracle", 3),
        ]

    def test_zip_advances_in_lockstep(self):
        spec = ExperimentSpec(
            name="z",
            axes={"seed": [1, 2], "duration_s": [0.5, 1.0]},
            mode="zip",
        )
        configs = spec.expand()
        assert [(c["seed"], c["duration_s"]) for c in configs] == [
            (1, 0.5), (2, 1.0),
        ]

    def test_zip_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="differ in length"):
            ExperimentSpec(
                name="z", axes={"seed": [1, 2], "duration_s": [0.5]},
                mode="zip",
            )

    def test_ensemble_requires_seed_axis(self):
        with pytest.raises(ValueError, match="seed"):
            ExperimentSpec(name="e", axes={"duration_s": [1]},
                           mode="ensemble")
        spec = ExperimentSpec.ensemble("e", seeds=[1, 2, 3])
        assert [c["seed"] for c in spec.expand()] == [1, 2, 3]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            ExperimentSpec(name="g", axes={"seed": []})

    def test_no_axes_is_single_point(self):
        spec = ExperimentSpec(name="one", base={"seed": 9})
        configs = spec.expand()
        assert len(configs) == 1
        assert configs[0]["seed"] == 9

    def test_auto_labels_carry_axis_values(self):
        spec = ExperimentSpec(name="g", axes={"capacitance_f": [1e-6]})
        assert spec.expand()[0]["label"] == "capacitance_f=1e-06"

    def test_expand_is_deterministic(self):
        spec = ExperimentSpec(
            name="g",
            base={"nvp": {"state_bits": 256}},
            axes={"nvp.backup_margin": [1.5, 2.0], "seed": [1, 2]},
        )
        assert spec.hashes() == spec.hashes()
        margins = [c["nvp"]["backup_margin"] for c in spec.expand()]
        assert margins == [1.5, 1.5, 2.0, 2.0]
        assert all(c["nvp"]["state_bits"] == 256 for c in spec.expand())

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            ExperimentSpec(name="m", mode="random")

    def test_needs_name(self):
        with pytest.raises(ValueError, match="name"):
            ExperimentSpec(name="")


class TestSpecFiles:
    def test_from_file_roundtrip(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "name": "file-spec",
            "description": "d",
            "mode": "grid",
            "base": {"duration_s": 0.5},
            "axes": {"seed": [1, 2]},
        }))
        spec = ExperimentSpec.from_file(str(path))
        assert spec.name == "file-spec"
        assert len(spec.expand()) == 2

    def test_from_file_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            ExperimentSpec.from_file(str(path))

    def test_from_file_rejects_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            ExperimentSpec.from_file(str(path))

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown spec key"):
            ExperimentSpec.from_dict({"name": "x", "points": 4})
