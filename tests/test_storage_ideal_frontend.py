"""Unit tests for the ideal store and the front-end channels."""

import pytest

from repro.storage.capacitor import Capacitor, ChargeEfficiency
from repro.storage.frontend import DualChannelFrontEnd, SingleChannelFrontEnd
from repro.storage.ideal import IdealStorage


class TestIdealStorage:
    def test_lossless_roundtrip(self):
        store = IdealStorage(1e-6)
        store.step(1e-3, 0.0, 1e-4)
        assert store.energy_j == pytest.approx(1e-7)
        result = store.step(0.0, 1e-3, 1e-4)
        assert result.delivered_j == pytest.approx(1e-7)
        assert store.energy_j == pytest.approx(0.0, abs=1e-18)

    def test_capacity_bound(self):
        store = IdealStorage(1e-9)
        result = store.step(1e-3, 0.0, 1e-3)
        assert store.energy_j == pytest.approx(1e-9)
        assert result.wasted_j == pytest.approx(1e-6 - 1e-9, rel=1e-6)

    def test_deficit(self):
        store = IdealStorage(1e-6)
        assert store.step(0.0, 1.0, 1e-3).deficit

    def test_validation(self):
        with pytest.raises(ValueError):
            IdealStorage(0.0)
        with pytest.raises(ValueError):
            IdealStorage(1e-6, initial_j=2e-6)
        store = IdealStorage(1e-6)
        with pytest.raises(ValueError):
            store.step(-1.0, 0.0, 1e-3)

    def test_draw(self):
        store = IdealStorage(1e-6, initial_j=1e-6)
        assert store.draw(4e-7) == pytest.approx(4e-7)
        assert store.energy_j == pytest.approx(6e-7)


class TestSingleChannel:
    def test_pays_conversion_twice_conceptually(self):
        """All load energy must route through the (lossy) capacitor."""
        cap = Capacitor(
            1e-6, v_initial_v=0.0, leak_resistance_ohm=1e18,
            efficiency=ChargeEfficiency(0.5, 0.5, 0.0, 1.0),
        )
        channel = SingleChannelFrontEnd(cap)
        result = channel.step(p_in_w=100e-6, p_load_w=40e-6, dt_s=1e-3)
        # 100 uW in at 50% efficiency = 50 uW stored; 40 uW load fits.
        assert result.delivered_j == pytest.approx(40e-9)
        assert not result.deficit

    def test_deficit_propagates(self):
        cap = Capacitor(1e-6, leak_resistance_ohm=1e18)
        channel = SingleChannelFrontEnd(cap)
        assert channel.step(0.0, 1e-3, 1e-3).deficit


class TestDualChannel:
    def make_lossy_cap(self):
        return Capacitor(
            1e-6, v_initial_v=1.0, leak_resistance_ohm=1e18,
            efficiency=ChargeEfficiency(0.5, 0.5, 0.0, 1.0),
        )

    def test_bypass_feeds_load_directly(self):
        channel = DualChannelFrontEnd(self.make_lossy_cap(), bypass_efficiency=1.0)
        result = channel.step(p_in_w=100e-6, p_load_w=60e-6, dt_s=1e-3)
        assert result.bypassed_j == pytest.approx(60e-9)
        assert result.delivered_j == pytest.approx(60e-9)

    def test_dual_beats_single_for_matched_load(self):
        """With income ~ load, the bypass avoids the double conversion."""
        single_cap = self.make_lossy_cap()
        dual_cap = self.make_lossy_cap()
        single = SingleChannelFrontEnd(single_cap)
        dual = DualChannelFrontEnd(dual_cap, bypass_efficiency=0.95)
        delivered_single = delivered_dual = 0.0
        for _ in range(200):
            delivered_single += single.step(50e-6, 50e-6, 1e-4).delivered_j
            delivered_dual += dual.step(50e-6, 50e-6, 1e-4).delivered_j
        # Single channel drains its initial store (50% in-efficiency
        # cannot sustain the load); dual channel sustains it.
        assert delivered_dual > delivered_single
        assert dual_cap.energy_j > single_cap.energy_j

    def test_idle_load_charges_storage(self):
        cap = self.make_lossy_cap()
        channel = DualChannelFrontEnd(cap)
        start = cap.energy_j
        result = channel.step(p_in_w=100e-6, p_load_w=0.0, dt_s=1e-3)
        assert result.delivered_j == 0.0
        assert cap.energy_j > start

    def test_shortfall_drawn_from_storage(self):
        cap = self.make_lossy_cap()
        channel = DualChannelFrontEnd(cap, bypass_efficiency=1.0)
        result = channel.step(p_in_w=10e-6, p_load_w=50e-6, dt_s=1e-3)
        assert result.delivered_j == pytest.approx(50e-9)
        assert result.bypassed_j == pytest.approx(10e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            DualChannelFrontEnd(self.make_lossy_cap(), bypass_efficiency=0.0)
        channel = DualChannelFrontEnd(self.make_lossy_cap())
        with pytest.raises(ValueError):
            channel.step(-1.0, 0.0, 1e-3)
        with pytest.raises(ValueError):
            channel.step(0.0, 0.0, 0.0)
