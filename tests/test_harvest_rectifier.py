"""Unit tests for the rectifier / front-end conversion model."""

import numpy as np
import pytest

from repro.harvest.rectifier import IDEAL_RECTIFIER, Rectifier
from repro.harvest.sources import constant_trace


class TestEfficiencyCurve:
    def test_zero_below_cutin(self):
        rect = Rectifier(cutin_power_w=2e-6)
        assert rect.efficiency(1e-6) == 0.0
        assert rect.output_power(1e-6) == 0.0

    def test_half_max_at_knee(self):
        rect = Rectifier(eta_max=0.8, knee_power_w=10e-6, cutin_power_w=0.0)
        assert rect.efficiency(10e-6) == pytest.approx(0.4)

    def test_saturates_at_eta_max(self):
        rect = Rectifier(eta_max=0.85, knee_power_w=8e-6)
        assert rect.efficiency(10.0) == pytest.approx(0.85, rel=1e-3)

    def test_monotone_in_power(self):
        rect = Rectifier()
        powers = np.logspace(-6, -2, 40)
        efficiencies = [rect.efficiency(p) for p in powers]
        assert all(a <= b + 1e-12 for a, b in zip(efficiencies, efficiencies[1:]))

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            Rectifier().efficiency(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Rectifier(eta_max=0.0)
        with pytest.raises(ValueError):
            Rectifier(eta_max=1.5)
        with pytest.raises(ValueError):
            Rectifier(knee_power_w=-1.0)


class TestConvert:
    def test_convert_matches_pointwise(self):
        rect = Rectifier()
        trace = constant_trace(50e-6, 0.01)
        converted = rect.convert(trace)
        assert converted.samples_w[0] == pytest.approx(rect.output_power(50e-6))

    def test_convert_labels_source(self):
        converted = Rectifier().convert(constant_trace(1e-6, 0.01))
        assert converted.source.endswith("+rect")

    def test_low_power_penalised_harder(self):
        """Conversion losses hit weak income hardest — the wait-compute
        penalty the tutorial highlights."""
        rect = Rectifier()
        weak = rect.efficiency(5e-6)
        strong = rect.efficiency(500e-6)
        assert weak < 0.5 * strong

    def test_ideal_rectifier_is_lossless(self):
        assert IDEAL_RECTIFIER.efficiency(1e-9) == 1.0
        assert IDEAL_RECTIFIER.output_power(5e-6) == pytest.approx(5e-6)
        # Zero input has zero output regardless of the curve.
        assert IDEAL_RECTIFIER.output_power(0.0) == 0.0
