"""Compiler correctness: every program must match the interpreter.

The interpreter and the code generator implement the same 16-bit
semantics independently; cross-checking them over a broad program
corpus is the compiler's primary correctness argument.
"""

import pytest

from repro.isa.cpu import CPU
from repro.lang.codegen import CodegenError, compile_source
from repro.lang.interp import interpret


def run_compiled(source, inputs=None, max_instructions=500_000):
    compiled = compile_source(source)
    cpu = CPU(compiled.program.instructions)
    cpu.memory.load_image(compiled.program.data_image)
    if inputs:
        cpu.memory.input_queue.extend(inputs)
    cpu.run(max_instructions=max_instructions)
    assert cpu.state.halted, "compiled program did not halt"
    return cpu.memory.output


def crosscheck(source, inputs=None):
    expected = interpret(source, inputs=list(inputs or [])).outputs
    actual = run_compiled(source, inputs=list(inputs or []))
    assert actual == expected, f"compiled {actual} != interpreted {expected}"
    return actual


CORPUS = {
    "arithmetic": """
        func main() {
            out(2 + 3 * 4);
            out((2 + 3) * 4);
            out(0xFFFF + 2);
            out(0 - 7);
            out(1000 * 1000);
            out(12345 / 17);
            out(12345 % 17);
            out(99 / 0);
            out(99 % 0);
        }
    """,
    "bitwise": """
        func main() {
            out(0xF0F0 & 0x0FF0);
            out(0xF0F0 | 0x0FF0);
            out(0xF0F0 ^ 0x0FF0);
            out(~0x00FF);
            out(1 << 12);
            out(3 << 17);
            out(0x8000 >> 3);
        }
    """,
    "comparisons": """
        func main() {
            out(1 < 2); out(2 < 1); out(0xFFFF < 1);
            out(3 <= 3); out(4 <= 3);
            out(5 > 2); out(0x8000 > 0);
            out(6 >= 7); out(7 >= 7);
            out(8 == 8); out(8 != 8); out(8 != 9);
        }
    """,
    "logicals": """
        int hits;
        func bump(v) { hits = hits + 1; return v; }
        func main() {
            out(0 && bump(1)); out(hits);
            out(2 && 3); out(0 || 0);
            out(1 || bump(1)); out(hits);
            out(!5); out(!0);
        }
    """,
    "loops": """
        func main() {
            int i; int acc;
            acc = 0;
            for (i = 0; i < 10; i = i + 1) { acc = acc + i * i; }
            out(acc);
            while (acc > 100) { acc = acc - 100; }
            out(acc);
        }
    """,
    "arrays": """
        int a[8] = {5, 9, 2, 7};
        int b[8];
        func main() {
            int i;
            for (i = 0; i < 8; i = i + 1) { b[7 - i] = a[i] * 2; }
            for (i = 0; i < 8; i = i + 1) { out(b[i]); }
        }
    """,
    "functions": """
        int scale = 3;
        func mul_add(a, b, c) { return a * b + c; }
        func apply(x) { return mul_add(x, scale, 1); }
        func main() {
            out(apply(5));
            out(mul_add(apply(2), apply(3), apply(4)));
        }
    """,
    "deep_expressions": """
        func main() {
            out(1 + (2 + (3 + (4 + (5 + (6 + (7 + 8)))))));
            out(((1 + 2) * (3 + 4)) + ((5 + 6) * (7 + 8)));
            out((1 | 2) & (3 ^ 4) | (5 << 2) - (6 >> 1));
        }
    """,
    "call_in_deep_expression": """
        func sq(x) { return x * x; }
        func main() {
            out(sq(2) + sq(3) * sq(4) - sq(sq(2)));
            out(sq(1 + sq(2)) + 1);
        }
    """,
    "inputs": """
        func main() {
            int a; int b;
            a = in(); b = in();
            out(a * b + in());
            out(in());
        }
    """,
    "globals_mutation": """
        int counter;
        func tick() { counter = counter + 1; return counter; }
        func main() {
            out(tick()); out(tick()); out(tick());
            counter = 100;
            out(tick());
        }
    """,
    "local_shadowing": """
        int x = 99;
        func f() { int x; x = 1; return x; }
        func main() { out(f()); out(x); x = x + f(); out(x); }
    """,
    "if_chains": """
        func grade(score) {
            if (score >= 90) { return 4; }
            else if (score >= 75) { return 3; }
            else if (score >= 60) { return 2; }
            else { return 1; }
        }
        func main() {
            out(grade(95)); out(grade(80)); out(grade(61)); out(grade(10));
        }
    """,
    "loop_local_rezero": """
        func main() {
            int i;
            for (i = 0; i < 3; i = i + 1) {
                int acc;
                acc = acc + 10;
                out(acc);
            }
        }
    """,
    "halt_statement": """
        func main() { out(1); halt; out(2); }
    """,
    "fall_through_returns_zero": """
        func nothing(a) { a = a + 1; }
        func main() { out(nothing(5)); }
    """,
    "fibonacci_iterative": """
        func fib(n) {
            int a; int b; int i; int t;
            a = 0; b = 1;
            for (i = 0; i < n; i = i + 1) { t = a + b; a = b; b = t; }
            return a;
        }
        func main() {
            int i;
            for (i = 0; i < 12; i = i + 1) { out(fib(i)); }
        }
    """,
    "gcd": """
        func gcd(a, b) {
            while (b != 0) { int t; t = b; b = a % b; a = t; }
            return a;
        }
        func main() { out(gcd(252, 105)); out(gcd(17, 5)); out(gcd(0, 9)); }
    """,
    "bubble_sort": """
        int data[10] = {170, 45, 75, 90, 802, 24, 2, 66, 1, 300};
        func main() {
            int i; int j;
            for (i = 0; i < 9; i = i + 1) {
                for (j = 0; j < 9 - i; j = j + 1) {
                    if (data[j] > data[j + 1]) {
                        int t;
                        t = data[j]; data[j] = data[j + 1]; data[j + 1] = t;
                    }
                }
            }
            for (i = 0; i < 10; i = i + 1) { out(data[i]); }
        }
    """,
}


class TestCrossCheck:
    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_compiled_matches_interpreter(self, name):
        inputs = [7, 9, 3, 11] if name == "inputs" else None
        crosscheck(CORPUS[name], inputs=inputs)

    def test_main_with_explicit_return(self):
        # The startup stub halts after main returns.
        assert run_compiled("func main() { out(1); return 5; out(2); }") == [1]


class TestCompileErrors:
    @pytest.mark.parametrize(
        "source,match",
        [
            ("func f() { }", "main"),
            ("func main(x) { }", "parameters"),
            ("func main() { out(y); }", "unknown variable"),
            ("int a[2]; func main() { out(a); }", "scalar"),
            ("int x; func main() { out(x[0]); }", "not an array"),
            ("int a[2]; func main() { a = 1; }", "assign to array"),
            ("func main() { out(f(1)); }", "unknown function"),
            ("func f(a) { } func main() { f(); }", "expects 1"),
        ],
    )
    def test_semantic_errors(self, source, match):
        with pytest.raises(CodegenError, match=match):
            compile_source(source)

    def test_direct_recursion_rejected(self):
        with pytest.raises(CodegenError, match="recursion"):
            compile_source("func f(n) { return f(n - 1); } func main() { f(3); }")

    def test_mutual_recursion_rejected(self):
        source = """
        func even(n) { if (n == 0) { return 1; } return odd(n - 1); }
        func odd(n) { if (n == 0) { return 0; } return even(n - 1); }
        func main() { out(even(4)); }
        """
        with pytest.raises(CodegenError, match="recursion"):
            compile_source(source)

    def test_calling_function_while_building_its_args_is_fine(self):
        """f(g(...)) where g also calls f is NOT recursion (f is not
        active while g runs) — the static-frame scheme must allow it."""
        source = """
        func f(a) { return a + 1; }
        func g(b) { return f(b) * 2; }
        func main() { out(f(g(3))); }
        """
        crosscheck(source)


class TestGeneratedCodeProperties:
    def test_asm_is_reassemblable(self):
        compiled = compile_source(CORPUS["functions"])
        from repro.isa.assembler import assemble

        reassembled = assemble(compiled.asm)
        assert reassembled.words == compiled.program.words

    def test_globals_land_in_nvm(self):
        compiled = compile_source("int x = 7; func main() { out(x); }")
        assert all(addr >= 0x8000 for addr in compiled.program.data_image)

    def test_array_initialisers_in_image(self):
        compiled = compile_source(
            "int a[4] = {1, 2, 3}; func main() { out(a[0]); }"
        )
        values = sorted(compiled.program.data_image.items())[:4]
        assert [v for _, v in values] == [1, 2, 3, 0]

    def test_compiled_program_runs_as_functional_workload(self):
        """Compiled NVC integrates with the workload machinery."""
        from repro.workloads.base import FunctionalWorkload

        compiled = compile_source(CORPUS["fibonacci_iterative"])
        workload = FunctionalWorkload(compiled.program, total_units=2)
        while not workload.finished:
            workload.advance(10e-3)
        expected = interpret(CORPUS["fibonacci_iterative"]).outputs
        assert list(workload.outputs) == expected * 2
