"""Tests for the workload abstraction (abstract + functional modes)."""

import numpy as np
import pytest

from repro.isa.energy import EnergyModel, InstrClass
from repro.workloads.base import AbstractWorkload, FunctionalWorkload
from repro.workloads.suite import (
    abstract_twin,
    build_kernel,
    expected_stream,
    make_functional_workload,
    measure_kernel,
)


class TestAbstractWorkload:
    def test_advance_consumes_time_budget(self):
        workload = AbstractWorkload()
        result = workload.advance(1e-3)  # 1 ms at ~1.36 us/instr
        assert 600 < result.instructions < 1_000
        assert result.time_s <= 1e-3 + 1e-12

    def test_energy_proportional_to_instructions(self):
        workload = AbstractWorkload()
        first = workload.advance(1e-3)
        per_instr = first.energy_j / first.instructions
        assert per_instr == pytest.approx(workload.mean_instruction_energy_j())

    def test_time_credit_carries_over(self):
        """Tiny budgets must accumulate instead of being dropped."""
        workload = AbstractWorkload()
        tiny = workload.mean_instruction_time_s() / 4
        executed = sum(workload.advance(tiny).instructions for _ in range(8))
        assert executed >= 1

    def test_finishes_at_total_units(self):
        workload = AbstractWorkload(total_units=2, instructions_per_unit=100)
        result = workload.advance(1.0)
        assert workload.finished
        assert result.instructions == 200
        assert workload.units_completed == 2

    def test_snapshot_restore(self):
        workload = AbstractWorkload()
        workload.advance(1e-3)
        snap = workload.snapshot()
        progress = workload.progress_instructions
        workload.advance(1e-3)
        workload.restore(snap)
        assert workload.progress_instructions == progress

    def test_restart_unit_drops_partial_unit(self):
        workload = AbstractWorkload(instructions_per_unit=1_000)
        while workload.progress_instructions < 1_500:
            workload.advance(1e-4)
        workload.restart_unit()
        assert workload.progress_instructions == 1_000

    def test_restore_rejects_garbage(self):
        workload = AbstractWorkload()
        with pytest.raises(ValueError):
            workload.restore("not-an-int")

    def test_validation(self):
        with pytest.raises(ValueError):
            AbstractWorkload(instructions_per_unit=0)
        with pytest.raises(ValueError):
            AbstractWorkload(total_units=0)
        with pytest.raises(ValueError):
            AbstractWorkload(mix={})
        with pytest.raises(ValueError):
            AbstractWorkload().advance(-1.0)

    def test_custom_mix_changes_energy(self):
        div_heavy = AbstractWorkload(mix={InstrClass.DIV: 1.0})
        alu_only = AbstractWorkload(mix={InstrClass.ALU: 1.0})
        assert (
            div_heavy.mean_instruction_energy_j()
            > 3 * alu_only.mean_instruction_energy_j()
        )

    def test_pseudo_snapshot_words(self):
        """Abstract workloads expose 8 deterministic pseudo-register
        words (the register file must still be costed in backups)."""
        workload = AbstractWorkload()
        snap = workload.snapshot()
        words = workload.snapshot_words(snap)
        assert len(words) == 8
        assert words[0] == 0
        assert words == workload.snapshot_words(snap)
        workload.advance(1e-3)
        assert workload.snapshot_words(workload.snapshot()) != words
        # Corruption of pseudo registers cannot alter progress.
        assert workload.apply_snapshot_words(snap, [1] * 8) == snap


class TestFunctionalWorkload:
    def make(self, frames=1, size=8):
        build = build_kernel("sobel", size=size)
        return build, make_functional_workload(build, frames=frames)

    def test_runs_to_completion(self):
        build, workload = self.make()
        total = 0
        while not workload.finished:
            total += workload.advance(1e-2).instructions
        assert workload.units_completed == 1
        assert np.array_equal(
            np.array(workload.outputs, dtype=np.uint16), build.expected_output
        )

    def test_multi_frame_outputs_concatenate(self):
        build, workload = self.make(frames=3)
        while not workload.finished:
            workload.advance(1e-2)
        assert np.array_equal(
            np.array(workload.outputs, dtype=np.uint16),
            expected_stream(build, frames=3),
        )

    def test_zero_budget_executes_nothing(self):
        _, workload = self.make()
        result = workload.advance(0.0)
        assert result.instructions == 0

    def test_snapshot_restore_mid_frame(self):
        build, workload = self.make()
        workload.advance(5e-4)
        snap = workload.snapshot()
        outputs_at_snap = list(workload.outputs)
        workload.advance(5e-4)
        workload.restore(snap)
        assert list(workload.outputs) == outputs_at_snap
        while not workload.finished:
            workload.advance(1e-2)
        assert np.array_equal(
            np.array(workload.outputs, dtype=np.uint16), build.expected_output
        )

    def test_snapshot_words_roundtrip(self):
        _, workload = self.make()
        workload.advance(5e-4)
        snap = workload.snapshot()
        words = workload.snapshot_words(snap)
        assert len(words) == 8
        rebuilt = workload.apply_snapshot_words(snap, words)
        assert rebuilt[0].regs == snap[0].regs

    def test_apply_snapshot_words_keeps_r0_zero(self):
        _, workload = self.make()
        snap = workload.snapshot()
        rebuilt = workload.apply_snapshot_words(snap, [99] * 8)
        assert rebuilt[0].regs[0] == 0
        assert rebuilt[0].regs[1] == 99

    def test_restart_unit_preserves_prior_outputs(self):
        build, workload = self.make(frames=2)
        while workload.units_completed < 1:
            workload.advance(1e-2)
        outputs_after_one = len(workload.outputs)
        workload.advance(2e-4)  # start frame 2
        workload.restart_unit()
        assert len(workload.outputs) >= outputs_after_one
        while not workload.finished:
            workload.advance(1e-2)
        assert np.array_equal(
            np.array(workload.outputs, dtype=np.uint16),
            expected_stream(build, frames=2),
        )

    def test_mean_energy_estimates_refine(self):
        _, workload = self.make()
        estimate_before = workload.mean_instruction_energy_j()
        workload.advance(1e-2)
        estimate_after = workload.mean_instruction_energy_j()
        assert estimate_before > 0
        assert estimate_after > 0

    def test_unit_instructions_estimate_after_first_frame(self):
        _, workload = self.make(frames=2)
        while workload.units_completed < 1:
            workload.advance(1e-2)
        assert workload.unit_instructions == 1579

    def test_stuck_program_detected(self):
        from repro.isa.assembler import assemble

        program = assemble("top: jmp top")
        workload = FunctionalWorkload(
            program, total_units=1, max_instructions_per_unit=1_000
        )
        with pytest.raises(RuntimeError, match="stuck"):
            while not workload.finished:
                workload.advance(1e-2)

    def test_validation(self):
        build = build_kernel("sobel", size=8)
        with pytest.raises(ValueError):
            FunctionalWorkload(build.program, total_units=0)


class TestSuiteHelpers:
    def test_measure_kernel_profile(self):
        build = build_kernel("crc", length=32)
        profile = measure_kernel(build)
        assert profile["instructions"] > 0
        mix_total = sum(v for k, v in profile.items() if k.startswith("mix_"))
        assert mix_total == pytest.approx(1.0)

    def test_abstract_twin_matches_counts(self):
        build = build_kernel("crc", length=32)
        profile = measure_kernel(build)
        twin = abstract_twin(build, frames=2)
        twin.advance(10.0)
        assert twin.finished
        assert twin.progress_instructions == 2 * int(profile["instructions"])

    def test_twin_energy_close_to_functional(self):
        """The abstract twin's per-instruction energy should track the
        functional kernel within a few percent."""
        build = build_kernel("sobel", size=8)
        profile = measure_kernel(build)
        twin = abstract_twin(build)
        functional_energy = profile["energy_j"] / profile["instructions"]
        assert twin.mean_instruction_energy_j() == pytest.approx(
            functional_energy, rel=0.05
        )

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            build_kernel("bogus")

    def test_expected_stream_validation(self):
        build = build_kernel("crc", length=16)
        with pytest.raises(ValueError):
            expected_stream(build, frames=0)
