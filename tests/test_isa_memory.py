"""Unit tests for the segmented memory map."""

import pytest

from repro.isa.memory import (
    ADDRESS_SPACE,
    INPUT_PORT,
    MMIO_BASE,
    MemoryMap,
    NVM_BASE,
    OUTPUT_PORT,
    RAM_BASE,
)


class TestRegions:
    @pytest.mark.parametrize(
        "address,region",
        [
            (RAM_BASE, "ram"),
            (NVM_BASE - 1, "ram"),
            (NVM_BASE, "nvm"),
            (MMIO_BASE - 1, "nvm"),
            (MMIO_BASE, "mmio"),
            (ADDRESS_SPACE - 1, "mmio"),
        ],
    )
    def test_region_boundaries(self, address, region):
        assert MemoryMap.region(address) == region

    @pytest.mark.parametrize("address", [-1, ADDRESS_SPACE])
    def test_out_of_range_rejected(self, address):
        with pytest.raises(ValueError):
            MemoryMap.region(address)


class TestReadWrite:
    def test_values_truncate_to_16_bits(self):
        mem = MemoryMap()
        mem.write(0x100, 0x12345)
        assert mem.read(0x100) == 0x2345

    def test_access_counters_by_region(self):
        mem = MemoryMap()
        mem.write(0x10, 1)
        mem.write(NVM_BASE, 2)
        mem.read(0x10)
        mem.read(NVM_BASE)
        mem.read(NVM_BASE + 1)
        assert (mem.ram_writes, mem.nvm_writes) == (1, 1)
        assert (mem.ram_reads, mem.nvm_reads) == (1, 2)

    def test_output_port_appends(self):
        mem = MemoryMap()
        mem.write(OUTPUT_PORT, 5)
        mem.write(OUTPUT_PORT, 6)
        assert mem.output == [5, 6]

    def test_input_port_pops(self):
        mem = MemoryMap()
        mem.input_queue.extend([10, 20])
        assert mem.read(INPUT_PORT) == 10
        assert mem.read(INPUT_PORT) == 20
        assert mem.read(INPUT_PORT) == 0  # empty queue reads as zero

    def test_other_mmio_words_are_plain_storage(self):
        mem = MemoryMap()
        mem.write(MMIO_BASE + 5, 77)
        assert mem.read(MMIO_BASE + 5) == 77


class TestBulkOps:
    def test_load_words_and_dump(self):
        mem = MemoryMap()
        mem.load_words(0x8000, [1, 2, 3])
        assert mem.dump_words(0x8000, 3) == [1, 2, 3]

    def test_load_words_not_charged(self):
        mem = MemoryMap()
        mem.load_words(NVM_BASE, [1, 2])
        assert mem.nvm_writes == 0

    def test_load_words_into_mmio_rejected(self):
        mem = MemoryMap()
        with pytest.raises(ValueError):
            mem.load_words(MMIO_BASE - 1, [1, 2])

    def test_load_image(self):
        mem = MemoryMap()
        mem.load_image({0x8000: 9, 0x8002: 11})
        assert mem.dump_words(0x8000, 3) == [9, 0, 11]

    def test_dump_out_of_range_rejected(self):
        mem = MemoryMap()
        with pytest.raises(ValueError):
            mem.dump_words(ADDRESS_SPACE - 1, 2)


class TestVolatility:
    def test_clear_volatile_wipes_ram_only(self):
        mem = MemoryMap()
        mem.write(0x100, 42)
        mem.write(NVM_BASE + 4, 43)
        mem.clear_volatile()
        assert mem.read(0x100) == 0
        assert mem.read(NVM_BASE + 4) == 43

    def test_ram_snapshot_roundtrip(self):
        mem = MemoryMap()
        mem.write(0x20, 5)
        snap = mem.snapshot_ram()
        mem.clear_volatile()
        mem.restore_ram(snap)
        assert mem.read(0x20) == 5

    def test_restore_ram_rejects_wrong_length(self):
        mem = MemoryMap()
        with pytest.raises(ValueError):
            mem.restore_ram([0, 1, 2])
