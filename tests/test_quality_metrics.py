"""Tests for the output-quality metrics."""

import math

import numpy as np
import pytest

from repro.quality.metrics import bit_accuracy, mae, mse, psnr, snr_db


class TestMSE:
    def test_identical_is_zero(self):
        assert mse([1, 2, 3], [1, 2, 3]) == 0.0

    def test_known_value(self):
        assert mse([0, 0], [3, 4]) == pytest.approx(12.5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse([1, 2], [1, 2, 3])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mse([], [])


class TestMAE:
    def test_known_value(self):
        assert mae([0, 0], [3, -4]) == pytest.approx(3.5)


class TestPSNR:
    def test_identical_is_infinite(self):
        assert psnr([5, 5], [5, 5]) == math.inf

    def test_known_value(self):
        # MSE = 1 against a 255 peak -> 48.13 dB.
        reference = np.zeros(100)
        noisy = np.zeros(100)
        noisy[:] = 1.0
        assert psnr(reference, noisy) == pytest.approx(48.13, abs=0.01)

    def test_more_noise_less_psnr(self):
        reference = np.zeros(64)
        assert psnr(reference, reference + 2) < psnr(reference, reference + 1)

    def test_max_value_parameter(self):
        reference = np.zeros(16)
        result = reference + 1
        assert psnr(reference, result, max_value=1.0) == pytest.approx(0.0, abs=1e-9)
        with pytest.raises(ValueError):
            psnr(reference, result, max_value=0.0)

    def test_conventional_quality_bands(self):
        """8-bit images within +/-4 grey levels of noise score above the
        conventional 'good' 20 dB line."""
        rng = np.random.default_rng(0)
        reference = rng.integers(0, 256, 1024).astype(float)
        noisy = reference + rng.normal(0, 4, 1024)
        assert psnr(reference, noisy) > 30


class TestSNR:
    def test_identical_is_infinite(self):
        assert snr_db([1, 2], [1, 2]) == math.inf

    def test_zero_signal_rejected(self):
        with pytest.raises(ValueError):
            snr_db([0, 0], [1, 1])

    def test_known_value(self):
        # Signal power 100, noise power 1 -> 20 dB.
        assert snr_db([10.0], [11.0]) == pytest.approx(20.0)


class TestBitAccuracy:
    def test_identical(self):
        assert bit_accuracy([0xFFFF, 0x1234], [0xFFFF, 0x1234]) == 1.0

    def test_single_bit_error(self):
        assert bit_accuracy([0], [1], bits=16) == pytest.approx(1 - 1 / 16)

    def test_all_bits_wrong(self):
        assert bit_accuracy([0x0000], [0xFFFF], bits=16) == 0.0

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            bit_accuracy([0], [0], bits=0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            bit_accuracy([0, 1], [0])
