"""Tests for the observability event bus."""

import pytest

from repro.obs import events as ev
from repro.obs.events import Event, EventBus, EventLog


class TestEmitAndSubscribe:
    def test_emit_without_subscribers_returns_none(self):
        bus = EventBus()
        assert bus.emit(ev.BACKUP_COMMIT, 1.0, energy_j=1e-9) is None

    def test_subscriber_receives_event(self):
        bus = EventBus()
        log = bus.record()
        event = bus.emit(ev.WAKE, 0.5, cold=True)
        assert event is not None
        assert len(log) == 1
        assert log[0].name == ev.WAKE
        assert log[0].t_s == 0.5
        assert log[0].data == {"cold": True}

    def test_named_subscription_filters(self):
        bus = EventBus()
        log = bus.record(names=(ev.BACKUP_COMMIT,))
        bus.emit(ev.BACKUP_COMMIT, 0.0)
        bus.emit(ev.RESTORE_COMMIT, 0.0)
        assert log.names() == [ev.BACKUP_COMMIT]

    def test_wants_reflects_subscriptions(self):
        bus = EventBus()
        assert not bus.enabled
        assert not bus.wants(ev.TICK)
        bus.record(names=(ev.TICK,))
        assert bus.enabled
        assert bus.wants(ev.TICK)
        assert not bus.wants(ev.WAKE)

    def test_all_subscriber_wants_everything(self):
        bus = EventBus()
        bus.record()
        assert bus.wants(ev.TICK) and bus.wants(ev.WAKE)

    def test_unsubscribe(self):
        bus = EventBus()
        log = EventLog()
        bus.subscribe(log.append)
        bus.unsubscribe(log.append)
        assert not bus.enabled
        bus.emit(ev.WAKE, 0.0)
        assert len(log) == 0

    def test_bus_clock_stamps_events(self):
        bus = EventBus()
        log = bus.record()
        bus.now_s = 1.25
        bus.emit(ev.WAKE)
        assert log[0].t_s == 1.25


class TestOrdering:
    def test_sequence_numbers_are_monotonic(self):
        bus = EventBus()
        log = bus.record()
        for _ in range(10):
            bus.emit(ev.BACKUP_START)
            bus.emit(ev.BACKUP_COMMIT)
        seqs = [event.seq for event in log]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_same_timestamp_events_keep_emit_order(self):
        bus = EventBus()
        log = bus.record()
        bus.now_s = 2.0
        bus.emit(ev.BACKUP_START)
        bus.emit(ev.BACKUP_COMMIT)
        assert log.names() == [ev.BACKUP_START, ev.BACKUP_COMMIT]
        assert log[0].seq < log[1].seq


class TestDisabledOverhead:
    def test_no_event_constructed_without_subscribers(self, monkeypatch):
        """The disabled hot path must not allocate Event objects."""
        def explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("Event constructed on disabled bus")

        monkeypatch.setattr(ev, "Event", explode)
        bus = EventBus()
        for _ in range(1000):
            bus.emit(ev.TICK, state="run", instructions=3, energy_j=1e-6)

    def test_unwanted_name_not_constructed(self, monkeypatch):
        def explode(*args, **kwargs):
            raise AssertionError("Event constructed for unwanted name")

        bus = EventBus()
        bus.record(names=(ev.WAKE,))
        monkeypatch.setattr(ev, "Event", explode)
        bus.emit(ev.TICK, state="run")


class TestEventLog:
    def make_log(self):
        bus = EventBus()
        log = bus.record()
        bus.emit(ev.OUTAGE_BEGIN, 0.1)
        bus.emit(ev.OUTAGE_END, 0.2, duration_s=0.1)
        bus.emit(ev.BACKUP_COMMIT, 0.3)
        bus.emit(ev.OUTAGE_BEGIN, 0.4)
        return log

    def test_counts(self):
        counts = self.make_log().counts()
        assert counts[ev.OUTAGE_BEGIN] == 2
        assert counts[ev.BACKUP_COMMIT] == 1

    def test_filter(self):
        filtered = self.make_log().filter(ev.OUTAGE_BEGIN, ev.OUTAGE_END)
        assert filtered.names() == [ev.OUTAGE_BEGIN, ev.OUTAGE_END, ev.OUTAGE_BEGIN]

    def test_between(self):
        window = self.make_log().between(0.15, 0.35)
        assert window.names() == [ev.OUTAGE_END, ev.BACKUP_COMMIT]

    def test_event_to_dict_roundtrip_fields(self):
        event = Event(ev.WAKE, 1.5, 3, {"cold": False})
        record = event.to_dict()
        assert record == {"name": ev.WAKE, "t_s": 1.5, "seq": 3, "cold": False}

    def test_event_names_registry_is_complete(self):
        for name in (ev.BACKUP_COMMIT, ev.OUTAGE_BEGIN, ev.POLICY_DECISION,
                     ev.THRESHOLD_RECOMPUTE, ev.TICK):
            assert name in ev.EVENT_NAMES


class TestValidation:
    def test_record_returns_live_log(self):
        bus = EventBus()
        log = bus.record()
        assert isinstance(log, EventLog)

    def test_subscribe_returns_callback(self):
        bus = EventBus()
        marker = []
        returned = bus.subscribe(marker.append)
        assert returned == marker.append

    def test_repr_mentions_name(self):
        assert "wake" in repr(Event(ev.WAKE, 0.0, 1, {}))


@pytest.mark.parametrize("names", [None, (ev.TICK,)])
def test_multiple_subscribers_all_receive(names):
    bus = EventBus()
    logs = [bus.record(names=names) for _ in range(3)]
    bus.emit(ev.TICK, 0.0, state="run")
    assert all(len(log) == 1 for log in logs)
