"""Unit tests for the NV16 behavioral core."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.assembler import assemble
from repro.isa.cpu import CPU, CPUState, ExecutionError
from repro.isa.energy import EnergyModel, InstrClass
from repro.isa.instructions import Instruction, Opcode, to_signed


def run_asm(source, max_instructions=100_000):
    prog = assemble(source)
    cpu = CPU(prog.instructions)
    cpu.memory.load_image(prog.data_image)
    cpu.run(max_instructions=max_instructions)
    return cpu


def reg_after(source, reg):
    return run_asm(source).state.regs[reg]


class TestALUSemantics:
    def test_add_wraps_16_bits(self):
        assert reg_after("li r1, 0xFFFF\naddi r1, r1, 2\nhalt", 1) == 1

    def test_sub_wraps(self):
        assert reg_after("li r1, 0\naddi r1, r1, -1\nhalt", 1) == 0xFFFF

    def test_logic_ops(self):
        cpu = run_asm(
            """
            li r1, 0xF0F0
            li r2, 0x0FF0
            and r3, r1, r2
            or  r4, r1, r2
            xor r5, r1, r2
            halt
            """
        )
        assert cpu.state.regs[3] == 0x00F0
        assert cpu.state.regs[4] == 0xFFF0
        assert cpu.state.regs[5] == 0xFF00

    def test_shifts(self):
        cpu = run_asm(
            """
            li r1, 0x8001
            shli r2, r1, 1
            shri r3, r1, 1
            sari r4, r1, 1
            halt
            """
        )
        assert cpu.state.regs[2] == 0x0002
        assert cpu.state.regs[3] == 0x4000
        assert cpu.state.regs[4] == 0xC000  # arithmetic preserves the sign bit

    def test_shift_amount_is_mod_16(self):
        assert reg_after("li r1, 3\nli r2, 17\nshl r3, r1, r2\nhalt", 3) == 6

    def test_mul_and_mulh(self):
        cpu = run_asm(
            """
            li r1, 300
            li r2, 300
            mul r3, r1, r2
            mulh r4, r1, r2
            halt
            """
        )
        assert cpu.state.regs[3] == (300 * 300) & 0xFFFF
        assert cpu.state.regs[4] == (300 * 300) >> 16

    def test_divu_remu(self):
        cpu = run_asm(
            """
            li r1, 100
            li r2, 7
            divu r3, r1, r2
            remu r4, r1, r2
            halt
            """
        )
        assert cpu.state.regs[3] == 14
        assert cpu.state.regs[4] == 2

    def test_division_by_zero_is_defined(self):
        cpu = run_asm(
            """
            li r1, 100
            divu r3, r1, r0
            remu r4, r1, r0
            halt
            """
        )
        assert cpu.state.regs[3] == 0xFFFF
        assert cpu.state.regs[4] == 100

    def test_slt_signed_vs_unsigned(self):
        cpu = run_asm(
            """
            li r1, 0xFFFF     ; -1 signed, 65535 unsigned
            li r2, 1
            slt  r3, r1, r2
            sltu r4, r1, r2
            halt
            """
        )
        assert cpu.state.regs[3] == 1  # -1 < 1
        assert cpu.state.regs[4] == 0  # 65535 > 1

    def test_lui(self):
        assert reg_after("lui r1, 0xAB\nhalt", 1) == 0xAB00

    def test_r0_is_hardwired_zero(self):
        cpu = run_asm("li r0, 99\nadd r0, r0, r0\nhalt")
        assert cpu.state.regs[0] == 0


class TestControlFlow:
    def test_branch_taken_and_not_taken(self):
        cpu = run_asm(
            """
            li r1, 5
            li r2, 5
            beq r1, r2, equal
            li r3, 111
            halt
            equal:
            li r3, 222
            halt
            """
        )
        assert cpu.state.regs[3] == 222

    def test_signed_branch(self):
        cpu = run_asm(
            """
            li r1, 0xFFFF      ; -1
            blt r1, r0, neg
            li r3, 1
            halt
            neg:
            li r3, 2
            halt
            """
        )
        assert cpu.state.regs[3] == 2

    def test_unsigned_branch(self):
        cpu = run_asm(
            """
            li r1, 0xFFFF
            bltu r1, r0, taken
            li r3, 1
            halt
            taken:
            li r3, 2
            halt
            """
        )
        assert cpu.state.regs[3] == 1  # 65535 is not < 0 unsigned

    def test_call_and_return(self):
        cpu = run_asm(
            """
            jmp main
            double:
            add r2, r1, r1
            ret
            main:
            li r1, 21
            call double
            halt
            """
        )
        assert cpu.state.regs[2] == 42

    def test_jal_saves_return_address(self):
        cpu = run_asm("jal r5, target\nnop\ntarget: halt")
        assert cpu.state.regs[5] == 1

    def test_loop_counts(self):
        cpu = run_asm(
            """
            li r1, 0
            li r2, 10
            loop:
            inc r1
            blt r1, r2, loop
            halt
            """
        )
        assert cpu.state.regs[1] == 10


class TestMemoryOps:
    def test_store_then_load(self):
        cpu = run_asm(
            """
            li r1, 0x8000
            li r2, 1234
            st r2, 0(r1)
            ld r3, 0(r1)
            halt
            """
        )
        assert cpu.state.regs[3] == 1234

    def test_data_image_visible(self):
        assert (
            reg_after(
                ".data 0x8000\nv: .word 777\n.text\nld r1, v(r0)\nhalt", 1
            )
            == 777
        )

    def test_mmio_output(self):
        cpu = run_asm("li r1, 0xF000\nli r2, 42\nst r2, 0(r1)\nhalt")
        assert cpu.memory.output == [42]


class TestExecutionControl:
    def test_halt_stops_run(self):
        cpu = run_asm("nop\nnop\nhalt")
        assert cpu.state.halted
        assert cpu.instructions_retired == 3

    def test_step_after_halt_raises(self):
        cpu = run_asm("halt")
        with pytest.raises(ExecutionError):
            cpu.step()

    def test_pc_out_of_range_raises(self):
        cpu = CPU(assemble("nop").instructions)
        cpu.step()
        with pytest.raises(ExecutionError, match="PC"):
            cpu.step()

    def test_run_respects_budget(self):
        prog = assemble("top: jmp top")
        cpu = CPU(prog.instructions)
        assert cpu.run(max_instructions=500) == 500
        assert not cpu.state.halted

    def test_reset(self):
        cpu = run_asm("li r1, 5\nhalt")
        cpu.reset()
        assert cpu.state.regs[1] == 0
        assert cpu.state.pc == 0
        assert not cpu.state.halted


class TestSnapshotRestore:
    def test_snapshot_roundtrip(self):
        cpu = run_asm("li r1, 7\nli r2, 9\nhalt")
        snap = cpu.snapshot()
        cpu.reset()
        assert cpu.state.regs[1] == 0
        cpu.restore(snap)
        assert cpu.state.regs[1] == 7
        assert cpu.state.halted

    def test_snapshot_is_independent_copy(self):
        cpu = run_asm("li r1, 7\nhalt")
        snap = cpu.snapshot()
        cpu.state.regs[1] = 99
        assert snap.regs[1] == 7

    def test_state_bits(self):
        assert CPUState().state_bits() == 8 * 16 + 16 + 1

    def test_mid_program_resume_equivalence(self):
        """Stopping and restoring mid-run must not change the result."""
        source = """
        li r1, 0
        li r2, 50
        loop:
        inc r1
        blt r1, r2, loop
        halt
        """
        prog = assemble(source)
        reference = CPU(prog.instructions)
        reference.run()

        cpu = CPU(prog.instructions)
        for _ in range(37):
            cpu.step()
        snap = cpu.snapshot()
        other = CPU(prog.instructions)
        other.restore(snap)
        other.run()
        assert other.state.regs == reference.state.regs


class TestAccounting:
    def test_cycles_and_energy_accumulate(self):
        cpu = run_asm("li r1, 1\nld r2, 0(r1)\nhalt")
        model = EnergyModel()
        expected_cycles = (
            model.instruction_cycles(InstrClass.ALU)
            + model.instruction_cycles(InstrClass.LOAD)
            + model.instruction_cycles(InstrClass.HALT)
        )
        assert cpu.cycles == expected_cycles
        assert cpu.energy_j == pytest.approx(
            model.instruction_energy(InstrClass.ALU)
            + model.instruction_energy(InstrClass.LOAD)
            + model.instruction_energy(InstrClass.HALT)
        )

    def test_step_info_fields(self):
        prog = assemble("jmp target\nnop\ntarget: halt")
        cpu = CPU(prog.instructions)
        info = cpu.step()
        assert info.pc_before == 0
        assert info.pc_after == 2
        assert info.instr_class is InstrClass.JUMP


@given(a=st.integers(0, 0xFFFF), b=st.integers(0, 0xFFFF))
def test_alu_matches_python_semantics(a, b):
    """Property: ADD/SUB/MUL/AND results equal mod-2^16 Python results."""
    cpu = CPU(
        [
            Instruction(Opcode.ADD, rd=3, rs1=1, rs2=2),
            Instruction(Opcode.SUB, rd=4, rs1=1, rs2=2),
            Instruction(Opcode.MUL, rd=5, rs1=1, rs2=2),
            Instruction(Opcode.AND, rd=6, rs1=1, rs2=2),
            Instruction(Opcode.HALT),
        ]
    )
    cpu.state.regs[1] = a
    cpu.state.regs[2] = b
    cpu.run()
    assert cpu.state.regs[3] == (a + b) & 0xFFFF
    assert cpu.state.regs[4] == (a - b) & 0xFFFF
    assert cpu.state.regs[5] == (a * b) & 0xFFFF
    assert cpu.state.regs[6] == a & b


@given(a=st.integers(0, 0xFFFF), b=st.integers(0, 0xFFFF))
def test_comparisons_match_python(a, b):
    cpu = CPU(
        [
            Instruction(Opcode.SLT, rd=3, rs1=1, rs2=2),
            Instruction(Opcode.SLTU, rd=4, rs1=1, rs2=2),
            Instruction(Opcode.HALT),
        ]
    )
    cpu.state.regs[1] = a
    cpu.state.regs[2] = b
    cpu.run()
    assert cpu.state.regs[3] == int(to_signed(a) < to_signed(b))
    assert cpu.state.regs[4] == int(a < b)
