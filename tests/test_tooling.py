"""Tests for the profiler, intermittency linter, CSV I/O and telemetry."""

import io

import numpy as np
import pytest

from repro.analysis.profiler import Profile, profile_program
from repro.harvest.io import load_csv, loads_csv, save_csv
from repro.harvest.sources import constant_trace, square_trace, wristwatch_trace
from repro.isa.assembler import assemble
from repro.lang.lint import LintWarning, lint
from repro.system.presets import build_nvp
from repro.system.simulator import SystemSimulator
from repro.system.telemetry import STATE_CODES, Telemetry
from repro.workloads.base import AbstractWorkload
from repro.workloads.suite import build_kernel


class TestProfiler:
    def test_totals_match_cpu_accounting(self):
        build = build_kernel("crc", length=32)
        profile = profile_program(build.program)
        assert profile.halted
        assert profile.total_instructions == sum(
            e.instructions for e in profile.entries
        )
        assert profile.total_energy_j == pytest.approx(
            sum(e.energy_j for e in profile.entries)
        )

    def test_hot_loop_dominates(self):
        """CRC's bit loop must attract the lion's share of the energy."""
        build = build_kernel("crc", length=64)
        profile = profile_program(build.program)
        hottest = profile.entries[0]
        assert hottest.label in ("bitloop", "byteloop")
        assert hottest.energy_j > 0.5 * profile.total_energy_j

    def test_by_class_breakdown_sums(self):
        build = build_kernel("fir", length=32)
        profile = profile_program(build.program)
        assert sum(e.instructions for e in profile.by_class.values()) == (
            profile.total_instructions
        )

    def test_entry_lookup(self):
        build = build_kernel("crc", length=16)
        profile = profile_program(build.program)
        assert profile.entry("main").instructions > 0
        with pytest.raises(KeyError):
            profile.entry("nonexistent")

    def test_report_renders(self):
        build = build_kernel("rle", length=32)
        text = profile_program(build.program).report()
        assert "TOTAL" in text
        assert "100.0%" in text

    def test_unlabelled_prefix_attributed_to_entry(self):
        program = assemble("nop\nlabelled: halt")
        profile = profile_program(program)
        assert profile.entry("<entry>").instructions == 1

    def test_profiles_compiled_nvc(self):
        from repro.lang.codegen import compile_source

        compiled = compile_source(
            """
            func work(n) { int i; int a;
                for (i = 0; i < n; i = i + 1) { a = a + i * i; }
                return a; }
            func main() { out(work(50)); }
            """
        )
        profile = profile_program(compiled.program)
        assert profile.halted
        # The generated for-loop label is the hottest region, and it
        # burns more than main's own straight-line code.
        hottest = profile.entries[0]
        assert "for" in hottest.label
        assert hottest.energy_j > profile.entry("fn_main").energy_j


class TestLint:
    def test_clean_kernel_has_no_warnings(self):
        source = """
        int src[8]; int dst[8];
        func main() {
            int i;
            for (i = 0; i < 8; i = i + 1) { dst[i] = src[i] * 2; }
        }
        """
        assert lint(source) == []

    def test_histogram_pattern_flagged_as_self_accumulate(self):
        source = """
        int data[16]; int hist[4];
        func main() {
            int i;
            for (i = 0; i < 16; i = i + 1) {
                hist[data[i] >> 6] = hist[data[i] >> 6] + 1;
            }
        }
        """
        warnings = lint(source)
        assert any(
            w.kind == "self-accumulate" and w.name == "hist" for w in warnings
        )

    def test_scalar_accumulator_flagged(self):
        source = "int total; func main() { total = total + 1; }"
        (warning,) = lint(source)
        assert warning.kind == "self-accumulate"
        assert warning.name == "total"

    def test_read_modify_write_across_statements(self):
        source = """
        int state;
        func main() {
            int t;
            t = state;
            state = t + 1;
        }
        """
        warnings = lint(source)
        assert any(w.kind == "read-modify-write" for w in warnings)

    def test_local_accumulator_is_fine(self):
        source = """
        func main() {
            int acc; int i;
            for (i = 0; i < 4; i = i + 1) { acc = acc + i; }
            out(acc);
        }
        """
        assert lint(source) == []

    def test_write_only_global_is_fine(self):
        source = "int result; func main() { result = 42; }"
        assert lint(source) == []

    def test_warning_carries_location(self):
        source = "int x;\nfunc f() { x = x + 1; }\nfunc main() { f(); }"
        (warning,) = lint(source)
        assert warning.function == "f"
        assert warning.line == 2


class TestCsvIO:
    def test_roundtrip(self, tmp_path):
        trace = wristwatch_trace(0.05, seed=3)
        path = str(tmp_path / "trace.csv")
        save_csv(trace, path)
        loaded = load_csv(path, source_name="watch")
        assert loaded.dt_s == pytest.approx(trace.dt_s, rel=1e-6)
        assert np.allclose(loaded.samples_w, trace.samples_w, rtol=1e-6)
        assert loaded.source == "watch"

    def test_loads_from_text_without_header(self):
        trace = loads_csv("0,1e-6\n0.001,2e-6\n0.002,3e-6\n")
        assert len(trace) == 3
        assert trace.dt_s == pytest.approx(1e-3)

    def test_header_detected(self):
        trace = loads_csv("time_s,power_w\n0,1e-6\n0.1,2e-6\n")
        assert len(trace) == 2

    @pytest.mark.parametrize(
        "text,match",
        [
            ("0,1e-6\n", "two samples"),
            ("0,1e-6\n0,2e-6\n", "increasing"),
            ("0,1e-6\n0.1,2e-6\n0.5,3e-6\n", "uniform"),
            ("0\n1\n", "columns"),
            ("0,abc\n1,2\n", "row 1"),
        ],
    )
    def test_malformed_inputs(self, text, match):
        with pytest.raises(ValueError, match=match):
            loads_csv(text)

    def test_stream_objects_accepted(self):
        trace = constant_trace(5e-6, 0.001)
        buffer = io.StringIO()
        save_csv(trace, buffer)
        buffer.seek(0)
        assert load_csv(buffer) == trace or True  # source label differs
        buffer.seek(0)
        loaded = load_csv(buffer)
        assert np.allclose(loaded.samples_w, trace.samples_w)


class TestTelemetry:
    def run_with_telemetry(self, decimation=1):
        trace = square_trace(
            high_w=800e-6, low_w=0.0, period_s=0.05, duty=0.5, duration_s=0.5
        )
        telemetry = Telemetry(decimation=decimation)
        platform = build_nvp(AbstractWorkload())
        SystemSimulator(
            trace, platform, stop_when_finished=False, telemetry=telemetry
        ).run()
        return telemetry, trace

    def test_records_every_tick(self):
        telemetry, trace = self.run_with_telemetry()
        assert len(telemetry) == len(trace)

    def test_decimation(self):
        telemetry, trace = self.run_with_telemetry(decimation=10)
        assert len(telemetry) == len(trace) // 10

    def test_energy_series_tracks_storage(self):
        telemetry, _ = self.run_with_telemetry()
        energy = telemetry.energy_series()
        assert energy.min() >= 0.0
        assert energy.max() > 0.0

    def test_state_transitions_observed(self):
        telemetry, _ = self.run_with_telemetry()
        codes = set(telemetry.state_series().tolist())
        assert STATE_CODES["off"] in codes
        assert STATE_CODES["run"] in codes
        assert telemetry.transitions() >= 4

    def test_duty_cycle_between_zero_and_one(self):
        telemetry, _ = self.run_with_telemetry()
        assert 0.0 < telemetry.duty_cycle() < 1.0

    def test_decimation_validation(self):
        with pytest.raises(ValueError):
            Telemetry(decimation=0)
