"""Unit tests for the forward-progress ledger and NVP configuration."""

import pytest
from hypothesis import given, strategies as st

from repro.core.config import DEFAULT_STATE_BITS, NVPConfig
from repro.core.progress import ForwardProgressLedger
from repro.nvm.retention import LinearPolicy, UniformPolicy
from repro.nvm.technology import FERAM, SRAM_REFERENCE, STT_MRAM


class TestLedger:
    def test_execute_then_commit(self):
        ledger = ForwardProgressLedger()
        ledger.execute(100)
        assert ledger.volatile == 100
        assert ledger.commit() == 100
        assert ledger.persistent == 100
        assert ledger.volatile == 0
        assert ledger.commits == 1

    def test_rollback_loses_volatile(self):
        ledger = ForwardProgressLedger()
        ledger.execute(50)
        assert ledger.rollback() == 50
        assert ledger.lost == 50
        assert ledger.persistent == 0
        assert ledger.rollbacks == 1

    def test_interleaved_sequence(self):
        ledger = ForwardProgressLedger()
        ledger.execute(10)
        ledger.commit()
        ledger.execute(20)
        ledger.rollback()
        ledger.execute(30)
        ledger.commit()
        assert ledger.persistent == 40
        assert ledger.lost == 20
        assert ledger.total_executed == 60

    def test_efficiency(self):
        ledger = ForwardProgressLedger()
        assert ledger.efficiency == 0.0
        ledger.execute(80)
        ledger.commit()
        ledger.execute(20)
        ledger.rollback()
        assert ledger.efficiency == pytest.approx(0.8)

    def test_negative_execution_rejected(self):
        with pytest.raises(ValueError):
            ForwardProgressLedger().execute(-1)

    def test_empty_commit_and_rollback(self):
        ledger = ForwardProgressLedger()
        assert ledger.commit() == 0
        assert ledger.rollback() == 0

    @given(st.lists(st.tuples(st.sampled_from(["x", "c", "r"]), st.integers(0, 1000))))
    def test_invariants_under_random_ops(self, ops):
        ledger = ForwardProgressLedger()
        for op, amount in ops:
            if op == "x":
                ledger.execute(amount)
            elif op == "c":
                ledger.commit()
            else:
                ledger.rollback()
        assert ledger.persistent >= 0
        assert ledger.volatile >= 0
        assert ledger.lost >= 0
        assert (
            ledger.total_executed
            == ledger.persistent + ledger.volatile + ledger.lost
        )


class TestNVPConfig:
    def test_defaults(self):
        config = NVPConfig()
        assert config.technology is FERAM
        assert config.state_bits == DEFAULT_STATE_BITS
        assert config.state_words == -(-DEFAULT_STATE_BITS // 16)

    def test_rejects_volatile_technology(self):
        with pytest.raises(ValueError, match="volatile"):
            NVPConfig(technology=SRAM_REFERENCE)

    def test_rejects_relaxation_on_unsupporting_technology(self):
        with pytest.raises(ValueError, match="relaxation"):
            NVPConfig(
                technology=FERAM,
                retention_policy=LinearPolicy(1e-3, FERAM.retention_s),
            )

    def test_accepts_relaxation_on_supporting_technology(self):
        NVPConfig(
            technology=STT_MRAM,
            retention_policy=LinearPolicy(1e-3, STT_MRAM.retention_s),
        )

    def test_accepts_uniform_nominal_on_any_technology(self):
        NVPConfig(technology=FERAM, retention_policy=UniformPolicy(FERAM.retention_s))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"clock_hz": 0},
            {"state_bits": 0},
            {"backup_parallelism": 0},
            {"backup_strategy": "bogus"},
            {"backup_margin": 0.5},
            {"run_reserve_ticks": -1},
            {"controller_overhead_j": -1e-12},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            NVPConfig(**kwargs)

    @pytest.mark.parametrize(
        "strategy", ["full", "compare_and_write", "incremental"]
    )
    def test_known_strategies_accepted(self, strategy):
        NVPConfig(backup_strategy=strategy)
