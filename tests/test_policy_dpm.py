"""Tests for energy-band dynamic power management."""

import pytest

from repro.core.config import NVPConfig
from repro.core.nvp import NVPPlatform
from repro.harvest.sources import wristwatch_trace
from repro.policy.dpm import EnergyBandGovernor, efficient_band
from repro.storage.capacitor import Capacitor, ChargeEfficiency
from repro.system.simulator import SystemSimulator
from repro.system.thresholds import plan_thresholds
from repro.workloads.base import AbstractWorkload


def peaky_cap(capacitance=150e-9):
    """A capacitor with a pronounced efficiency peak (DPM's target)."""
    return Capacitor(
        capacitance,
        v_max_v=3.3,
        leak_resistance_ohm=1e9,
        efficiency=ChargeEfficiency(
            eta_peak=0.92, eta_floor=0.35, v_opt_v=2.0, v_span_v=1.4
        ),
    )


def make_plan():
    return plan_thresholds(1e-9, 1e-9, 200e-6, 1e-4)


class TestEfficientBand:
    def test_band_around_optimal_voltage(self):
        cap = peaky_cap()
        lo, hi = efficient_band(cap, 0.5, 1.2)
        e_opt = 0.5 * cap.capacitance_f * 4.0
        assert lo == pytest.approx(0.5 * e_opt)
        assert hi == pytest.approx(min(1.2 * e_opt, cap.energy_max_j))

    def test_band_clamped_to_capacity(self):
        cap = peaky_cap()
        _, hi = efficient_band(cap, 0.5, 100.0)
        assert hi <= cap.energy_max_j

    def test_validation(self):
        with pytest.raises(ValueError):
            efficient_band(peaky_cap(), 1.0, 0.5)


class TestGovernor:
    def test_full_speed_inside_band(self):
        governor = EnergyBandGovernor(1e-7, 3e-7, slowdown=0.2)
        assert governor(2e-7, make_plan(), 1e-4) == 1.0
        assert governor.full_ticks == 1

    def test_throttles_below_band(self):
        governor = EnergyBandGovernor(1e-7, 3e-7, slowdown=0.2)
        assert governor(1e-8, make_plan(), 1e-4) == pytest.approx(0.2)
        assert governor.throttled_ticks == 1

    def test_never_throttles_below_backup_floor(self):
        """The floor is max(band_lo, backup threshold): the platform's
        backup trigger stays reachable."""
        plan = plan_thresholds(1e-6, 1e-9, 200e-6, 1e-4)
        governor = EnergyBandGovernor(1e-9, 1e-6, slowdown=0.2)
        # Above the backup threshold but below band_hi: full speed,
        # because the effective floor is the (higher) backup threshold.
        assert governor(plan.backup_threshold_j * 1.1, plan, 1e-4) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyBandGovernor(2.0, 1.0)
        with pytest.raises(ValueError):
            EnergyBandGovernor(1.0, 2.0, slowdown=0.0)

    def test_for_capacitor_constructor(self):
        governor = EnergyBandGovernor.for_capacitor(peaky_cap())
        assert governor.band_hi_j > governor.band_lo_j > 0


class TestDPMEndToEnd:
    def run_with(self, governor, seed=11):
        trace = wristwatch_trace(6.0, seed=seed, mean_power_w=30e-6)
        workload = AbstractWorkload()
        cap = peaky_cap()
        platform = NVPPlatform(
            workload, cap, NVPConfig(), seed=0, governor=governor
        )
        return SystemSimulator(trace, platform, stop_when_finished=False).run()

    def test_band_dpm_beats_greedy(self):
        """Keeping the capacitor in its efficient band must raise net
        forward progress versus greedy full-speed draining."""
        greedy = self.run_with(None)
        cap = peaky_cap()
        dpm = self.run_with(EnergyBandGovernor.for_capacitor(cap, 0.4, 1.2, 0.25))
        assert dpm.forward_progress > greedy.forward_progress

    def test_dpm_reports_throttling(self):
        cap = peaky_cap()
        governor = EnergyBandGovernor.for_capacitor(cap, 0.4, 1.2, 0.25)
        self.run_with(governor)
        assert governor.throttled_ticks > 0
        assert governor.full_ticks >= 0
