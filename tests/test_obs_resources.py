"""Tests for getrusage-based worker resource accounting."""

import os

import pytest

from repro.obs.resources import (
    ResourceSample,
    aggregate_usage,
    available,
    sample_resources,
    usage_between,
)


class TestSampling:
    def test_available_on_posix(self):
        assert available() is True  # the CI/test platforms are POSIX

    def test_sample_shape(self):
        sample = sample_resources()
        assert sample.pid == os.getpid()
        assert sample.cpu_user_s >= 0.0
        assert sample.cpu_system_s >= 0.0
        assert sample.peak_rss_kb > 0.0  # a live interpreter has RSS
        assert sample.cpu_s == pytest.approx(
            sample.cpu_user_s + sample.cpu_system_s
        )

    def test_to_dict_roundtrips_fields(self):
        data = sample_resources().to_dict()
        assert set(data) == {
            "cpu_user_s", "cpu_system_s", "cpu_s", "peak_rss_kb", "pid",
        }

    def test_cpu_is_monotonic(self):
        before = sample_resources()
        sum(i * i for i in range(200_000))  # burn a little CPU
        after = sample_resources()
        assert after.cpu_s >= before.cpu_s


class TestUsageBetween:
    def test_delta_semantics(self):
        before = ResourceSample(1.0, 0.5, 1000.0, 42)
        after = ResourceSample(3.0, 1.0, 2000.0, 42)
        usage = usage_between(before, after)
        assert usage["cpu_user_s"] == pytest.approx(2.0)
        assert usage["cpu_system_s"] == pytest.approx(0.5)
        assert usage["cpu_s"] == pytest.approx(2.5)
        # Peak RSS is the absolute lifetime value, not a delta.
        assert usage["peak_rss_kb"] == 2000.0
        assert usage["pid"] == 42

    def test_negative_deltas_clamped(self):
        before = ResourceSample(5.0, 5.0, 1000.0, 1)
        after = ResourceSample(1.0, 1.0, 1000.0, 1)
        usage = usage_between(before, after)
        assert usage["cpu_user_s"] == 0.0
        assert usage["cpu_s"] == 0.0


class TestAggregation:
    def test_sums_cpu_maxes_rss_counts_workers(self):
        usages = [
            {"cpu_user_s": 1.0, "cpu_system_s": 0.25, "cpu_s": 1.25,
             "peak_rss_kb": 500.0, "pid": 1},
            {"cpu_user_s": 2.0, "cpu_system_s": 0.75, "cpu_s": 2.75,
             "peak_rss_kb": 900.0, "pid": 2},
            {"cpu_user_s": 0.5, "cpu_system_s": 0.0, "cpu_s": 0.5,
             "peak_rss_kb": 400.0, "pid": 1},  # pid 1 again
        ]
        agg = aggregate_usage(usages)
        assert agg["cpu_s"] == pytest.approx(4.5)
        assert agg["cpu_user_s"] == pytest.approx(3.5)
        assert agg["peak_rss_kb"] == 900.0
        assert agg["workers"] == 2

    def test_empty_and_none_entries(self):
        agg = aggregate_usage([{}, None, {"cpu_s": None, "pid": None}])
        assert agg == {
            "cpu_user_s": 0.0, "cpu_system_s": 0.0, "cpu_s": 0.0,
            "peak_rss_kb": 0.0, "workers": 0,
        }

    def test_accepts_generators(self):
        agg = aggregate_usage(
            {"cpu_s": 1.0, "pid": pid} for pid in (1, 2)
        )
        assert agg["workers"] == 2
        assert agg["cpu_s"] == 2.0
