"""Tests for the NVC interpreter (the semantic oracle)."""

import pytest

from repro.lang.interp import InterpError, interpret


def outputs(source, inputs=None):
    return interpret(source, inputs=inputs).outputs


def one(expr, prelude=""):
    return outputs(f"{prelude}\nfunc main() {{ out({expr}); }}")[0]


class TestArithmetic:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("2 + 3", 5),
            ("0xFFFF + 2", 1),          # 16-bit wrap
            ("0 - 1", 0xFFFF),
            ("300 * 300", (300 * 300) & 0xFFFF),
            ("100 / 7", 14),
            ("100 % 7", 2),
            ("100 / 0", 0xFFFF),        # NV16 division-by-zero semantics
            ("100 % 0", 100),
            ("0xF0F0 & 0x0FF0", 0x00F0),
            ("0xF0F0 | 0x0FF0", 0xFFF0),
            ("0xF0F0 ^ 0x0FF0", 0xFF00),
            ("1 << 4", 16),
            ("3 << 17", 6),             # shift count mod 16
            ("0x8000 >> 1", 0x4000),    # unsigned shift
            ("-5", 0xFFFB),
            ("~0", 0xFFFF),
            ("!0", 1),
            ("!7", 0),
        ],
    )
    def test_expression_values(self, expr, expected):
        assert one(expr) == expected

    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("1 < 2", 1),
            ("2 < 1", 0),
            ("0xFFFF < 1", 1),   # signed: -1 < 1
            ("1 <= 1", 1),
            ("2 > 1", 1),
            ("0x8000 > 0", 0),   # signed: -32768 > 0 is false
            ("3 >= 4", 0),
            ("5 == 5", 1),
            ("5 != 5", 0),
        ],
    )
    def test_comparisons(self, expr, expected):
        assert one(expr) == expected

    def test_short_circuit_and(self):
        # Division by zero in the right operand must not run.
        source = """
        int hits;
        func boom() { hits = hits + 1; return 1; }
        func main() { out(0 && boom()); out(hits); }
        """
        assert outputs(source) == [0, 0]

    def test_short_circuit_or(self):
        source = """
        int hits;
        func boom() { hits = hits + 1; return 0; }
        func main() { out(1 || boom()); out(hits); }
        """
        assert outputs(source) == [1, 0]

    def test_logical_results_normalised(self):
        assert one("5 && 9") == 1
        assert one("0 || 7") == 1


class TestStatements:
    def test_while_loop(self):
        source = """
        func main() {
            int i; int acc;
            i = 0; acc = 0;
            while (i < 5) { acc = acc + i; i = i + 1; }
            out(acc);
        }
        """
        assert outputs(source) == [10]

    def test_for_loop(self):
        source = """
        func main() {
            int i;
            for (i = 1; i <= 3; i = i + 1) { out(i); }
        }
        """
        assert outputs(source) == [1, 2, 3]

    def test_nested_if(self):
        source = """
        func classify(x) {
            if (x < 10) { return 1; } else if (x < 100) { return 2; }
            return 3;
        }
        func main() { out(classify(5)); out(classify(50)); out(classify(500)); }
        """
        assert outputs(source) == [1, 2, 3]

    def test_halt_stops_everything(self):
        source = "func main() { out(1); halt; out(2); }"
        assert outputs(source) == [1]

    def test_arrays(self):
        source = """
        int a[4] = {10, 20};
        func main() {
            a[2] = a[0] + a[1];
            out(a[2]);
            out(a[3]);
        }
        """
        assert outputs(source) == [30, 0]

    def test_in_builtin_consumes_queue(self):
        source = "func main() { out(in() + in()); out(in()); }"
        assert outputs(source, inputs=[4, 5]) == [9, 0]

    def test_locals_shadow_globals(self):
        source = """
        int x = 99;
        func main() { int x; x = 1; out(x); }
        """
        assert outputs(source) == [1]

    def test_local_decl_rezeros_in_loop(self):
        source = """
        func main() {
            int i;
            for (i = 0; i < 3; i = i + 1) {
                int acc;
                acc = acc + 1;
                out(acc);
            }
        }
        """
        assert outputs(source) == [1, 1, 1]

    def test_functions_and_return(self):
        source = """
        func add(a, b) { return a + b; }
        func twice(x) { return add(x, x); }
        func main() { out(twice(21)); }
        """
        assert outputs(source) == [42]

    def test_void_return_value_is_zero(self):
        source = """
        func nothing() { return; }
        func main() { out(nothing()); }
        """
        assert outputs(source) == [0]

    def test_main_return_value(self):
        assert interpret("func main() { return 7; }").returned == 7


class TestErrors:
    @pytest.mark.parametrize(
        "source,match",
        [
            ("func f() { }", "main"),
            ("func main(x) { }", "parameters"),
            ("func main() { out(y); }", "unknown variable"),
            ("int a[2]; func main() { out(a); }", "scalar"),
            ("int x; func main() { out(x[0]); }", "not an array"),
            ("int a[2]; func main() { out(a[5]); }", "out of bounds"),
            ("func main() { out(f(1)); }", "no function"),
            ("func f(a) { } func main() { f(); }", "expects 1"),
        ],
    )
    def test_runtime_errors(self, source, match):
        with pytest.raises(InterpError, match=match):
            interpret(source)

    def test_infinite_loop_budget(self):
        with pytest.raises(InterpError, match="budget"):
            interpret("func main() { while (1) { } }", max_steps=1_000)
