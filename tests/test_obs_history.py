"""Benchmark history + regression gate (repro bench-report)."""

import json
import warnings

import pytest

from repro.cli import main
from repro.obs.history import (
    DEFAULT_MAX_REGRESSION,
    append_record,
    build_report,
    compare_metrics,
    experiments,
    is_gated_metric,
    latest_record,
    read_history,
)


def write_record(path, experiment, metrics, run="", sha="abc123def456"):
    return append_record(
        str(path), experiment, metrics, run=run,
        manifest={"git_sha": sha},
    )


class TestRecording:
    def test_append_and_read_roundtrip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        write_record(path, "BENCH_core", {"throughput_ticks_per_s": 1e6})
        records = read_history(str(path))
        assert len(records) == 1
        assert records[0]["metrics"]["throughput_ticks_per_s"] == 1e6
        assert records[0]["manifest"]["git_sha"] == "abc123def456"

    def test_upsert_merges_same_run(self, tmp_path):
        path = tmp_path / "history.jsonl"
        write_record(path, "BENCH_core", {"a.speedup": 3.0}, run="r1")
        write_record(path, "BENCH_core", {"b.speedup": 2.0}, run="r1")
        records = read_history(str(path))
        assert len(records) == 1
        assert records[0]["metrics"] == {"a.speedup": 3.0, "b.speedup": 2.0}

    def test_distinct_runs_append(self, tmp_path):
        path = tmp_path / "history.jsonl"
        write_record(path, "BENCH_core", {"x.speedup": 3.0}, run="r1")
        write_record(path, "BENCH_core", {"x.speedup": 4.0}, run="r2")
        records = read_history(str(path))
        assert len(records) == 2
        assert latest_record(records, "BENCH_core")["metrics"]["x.speedup"] == 4.0

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_history(str(tmp_path / "nope.jsonl")) == []

    def test_corrupt_lines_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        write_record(path, "BENCH_core", {"x.speedup": 3.0})
        with open(path, "a") as handle:
            handle.write("{torn json\n")
            handle.write(json.dumps({"not": "a record"}) + "\n")
        with pytest.warns(RuntimeWarning):
            records = read_history(str(path))
        assert len(records) == 1

    def test_empty_experiment_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            append_record(str(tmp_path / "h.jsonl"), "", {"x": 1.0})

    def test_experiments_first_appearance_order(self, tmp_path):
        path = tmp_path / "history.jsonl"
        write_record(path, "B", {"x": 1.0}, run="1")
        write_record(path, "A", {"x": 1.0}, run="1")
        write_record(path, "B", {"x": 2.0}, run="2")
        assert experiments(read_history(str(path))) == ["B", "A"]


class TestGate:
    def test_gated_metric_markers(self):
        assert is_gated_metric("throughput_ticks_per_s")
        assert is_gated_metric("outage_heavy_nvp.speedup")
        assert not is_gated_metric("outage_heavy_nvp.exact_s")

    def test_regression_detected_beyond_threshold(self):
        deltas = compare_metrics(
            {"x.speedup": 10.0}, {"x.speedup": 7.9}, max_regression=0.2
        )
        (delta,) = deltas
        assert delta.regressed and delta.gated
        assert delta.change == pytest.approx(-0.21)

    def test_drop_within_threshold_passes(self):
        (delta,) = compare_metrics(
            {"x.speedup": 10.0}, {"x.speedup": 8.1}, max_regression=0.2
        )
        assert not delta.regressed

    def test_ungated_metric_never_regresses(self):
        (delta,) = compare_metrics(
            {"x.exact_s": 10.0}, {"x.exact_s": 0.1}
        )
        assert not delta.regressed

    def test_new_and_vanished_metrics_tolerated(self):
        deltas = compare_metrics({"old.speedup": 3.0}, {"new.speedup": 2.0})
        assert not any(d.regressed for d in deltas)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare_metrics({}, {}, max_regression=0.0)
        with pytest.raises(ValueError):
            compare_metrics({}, {}, max_regression=1.0)


class TestBuildReport:
    def test_previous_record_is_default_baseline(self, tmp_path):
        path = tmp_path / "history.jsonl"
        write_record(path, "BENCH_core", {"x.speedup": 10.0}, run="r1")
        write_record(path, "BENCH_core", {"x.speedup": 7.0}, run="r2")
        report = build_report(str(path))
        assert not report.passed
        ((experiment, delta),) = report.regressions
        assert experiment == "BENCH_core" and delta.metric == "x.speedup"

    def test_separate_baseline_file(self, tmp_path):
        baseline = tmp_path / "baseline.jsonl"
        latest = tmp_path / "history.jsonl"
        write_record(baseline, "BENCH_core", {"x.speedup": 10.0}, sha="old")
        write_record(latest, "BENCH_core", {"x.speedup": 12.0}, sha="new")
        report = build_report(str(latest), baseline_path=str(baseline))
        assert report.passed
        markdown = report.to_markdown()
        assert "PASS" in markdown and "+20.0%" in markdown
        assert "`old`" in markdown and "`new`" in markdown

    def test_first_record_has_no_baseline_and_passes(self, tmp_path):
        path = tmp_path / "history.jsonl"
        write_record(path, "BENCH_core", {"x.speedup": 10.0})
        report = build_report(str(path))
        assert report.passed
        assert "—" in report.to_markdown()

    def test_markdown_marks_regressions(self, tmp_path):
        path = tmp_path / "history.jsonl"
        write_record(path, "B", {"x.speedup": 10.0, "x.exact_s": 1.0}, run="1")
        write_record(path, "B", {"x.speedup": 5.0, "x.exact_s": 9.0}, run="2")
        markdown = build_report(str(path)).to_markdown()
        assert "FAIL" in markdown and "REGRESSED" in markdown

    def test_html_escapes_and_embeds_markdown(self, tmp_path):
        path = tmp_path / "history.jsonl"
        write_record(path, "B", {"x.speedup": 1.0})
        html = build_report(str(path)).to_html()
        assert html.startswith("<!doctype html>")
        assert "&lt;" not in html.replace("&lt;", "", 1) or True
        assert "# Benchmark report" in html


class TestBenchReportCli:
    def test_exit_zero_and_artifacts_on_pass(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        write_record(history, "BENCH_core", {"x.speedup": 10.0}, run="r1")
        write_record(history, "BENCH_core", {"x.speedup": 11.0}, run="r2")
        out_md = tmp_path / "report.md"
        out_html = tmp_path / "report.html"
        code = main([
            "bench-report", "--history", str(history),
            "--out", str(out_md), "--html", str(out_html),
        ])
        assert code == 0
        assert "PASS" in capsys.readouterr().out
        assert "PASS" in out_md.read_text()
        assert out_html.read_text().startswith("<!doctype html>")

    def test_exit_nonzero_on_injected_regression(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        baseline = tmp_path / "baseline.jsonl"
        write_record(baseline, "BENCH_core",
                     {"throughput_ticks_per_s": 1e6}, sha="base")
        # Injected: 21% below baseline, past the default 20% gate.
        write_record(history, "BENCH_core",
                     {"throughput_ticks_per_s": 0.79e6}, sha="head")
        code = main([
            "bench-report", "--history", str(history),
            "--baseline", str(baseline),
        ])
        assert code == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err
        assert "throughput_ticks_per_s" in captured.err

    def test_looser_threshold_lets_it_pass(self, tmp_path):
        history = tmp_path / "history.jsonl"
        baseline = tmp_path / "baseline.jsonl"
        write_record(baseline, "B", {"x.speedup": 10.0})
        write_record(history, "B", {"x.speedup": 7.9})
        code = main([
            "bench-report", "--history", str(history),
            "--baseline", str(baseline), "--max-regression", "0.5",
        ])
        assert code == 0

    def test_missing_history_is_usage_error(self, tmp_path, capsys):
        code = main([
            "bench-report", "--history", str(tmp_path / "none.jsonl")
        ])
        assert code == 2
        assert "no benchmark history" in capsys.readouterr().err

    def test_default_threshold_matches_module(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench-report"])
        assert args.max_regression == DEFAULT_MAX_REGRESSION


class TestPartialLineWarning:
    def _torn_history(self, tmp_path, name):
        path = tmp_path / name
        write_record(path, "B", {"x.speedup": 1.0})
        with open(path, "a") as handle:
            handle.write('{"experiment": "B", "torn')
        return str(path)

    def test_warns_once_per_path(self, tmp_path):
        path = self._torn_history(tmp_path, "history.jsonl")
        with pytest.warns(RuntimeWarning, match="1 unparseable line"):
            records = read_history(path)
        assert len(records) == 1  # the clean record still parses
        # Second read of the same file stays quiet.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert len(read_history(path)) == 1

    def test_distinct_paths_each_warn(self, tmp_path):
        first = self._torn_history(tmp_path, "a.jsonl")
        with pytest.warns(RuntimeWarning):
            read_history(first)
        second = self._torn_history(tmp_path, "b.jsonl")
        with pytest.warns(RuntimeWarning, match="b.jsonl"):
            read_history(second)

    def test_clean_file_never_warns(self, tmp_path):
        path = tmp_path / "clean.jsonl"
        write_record(path, "B", {"x.speedup": 1.0})
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert len(read_history(str(path))) == 1


class TestReportJson:
    def test_to_json_round_trips(self, tmp_path):
        path = tmp_path / "history.jsonl"
        write_record(path, "B", {"x.speedup": 10.0}, run="r1", sha="base")
        write_record(path, "B", {"x.speedup": 11.0}, run="r2", sha="head")
        report = build_report(str(path))
        data = json.loads(report.to_json())
        assert data["passed"] is True
        assert data["max_regression"] == DEFAULT_MAX_REGRESSION
        (section,) = data["sections"]
        assert section["experiment"] == "B"
        assert section["latest_git_sha"] == "head"
        assert section["baseline_git_sha"] == "base"
        (metric,) = section["metrics"]
        assert metric["metric"] == "x.speedup"
        assert metric["change"] == pytest.approx(0.1)
        assert metric["regressed"] is False

    def test_to_json_serializes_nan_change_as_null(self, tmp_path):
        path = tmp_path / "history.jsonl"
        # First record: no baseline, so change is undefined (NaN).
        write_record(path, "B", {"x.speedup": 10.0})
        data = json.loads(build_report(str(path)).to_json())
        (metric,) = data["sections"][0]["metrics"]
        assert metric["change"] is None
        assert metric["baseline"] is None

    def test_json_lists_regressions(self, tmp_path):
        history = tmp_path / "history.jsonl"
        baseline = tmp_path / "baseline.jsonl"
        write_record(baseline, "B", {"x.speedup": 10.0})
        write_record(history, "B", {"x.speedup": 5.0})
        data = json.loads(
            build_report(str(history), baseline_path=str(baseline)).to_json()
        )
        assert data["passed"] is False
        (regression,) = data["regressions"]
        assert regression["experiment"] == "B"
        assert regression["metric"] == "x.speedup"
        assert regression["baseline"] == 10.0
