"""Integration tests asserting the paper-level result *shapes*.

These are the claims the DATE'17 tutorial makes (and the experiment
suite reproduces); each test runs the real stack end-to-end and checks
the qualitative relationship, not absolute numbers.
"""

import numpy as np
import pytest

from repro.core.config import NVPConfig
from repro.core.nvp import NVPPlatform
from repro.harvest.sources import wristwatch_trace
from repro.nvm.retention import LinearPolicy, LogPolicy, ParabolaPolicy
from repro.nvm.technology import STT_MRAM
from repro.system.presets import (
    build_checkpoint,
    build_nvp,
    build_wait_compute,
    nvp_capacitor,
    standard_rectifier,
)
from repro.system.simulator import SystemSimulator
from repro.workloads.base import AbstractWorkload


@pytest.fixture(scope="module")
def watch_trace():
    return wristwatch_trace(8.0, seed=42, mean_power_w=25e-6)


def run(trace, platform):
    return SystemSimulator(
        trace, platform, rectifier=standard_rectifier(), stop_when_finished=False
    ).run()


class TestPlatformComparison:
    """NVP vs wait-and-compute vs software checkpointing (the 2.2-5x claim)."""

    @pytest.fixture(scope="class")
    def results(self, watch_trace):
        return {
            "nvp": run(watch_trace, build_nvp(AbstractWorkload())),
            "wait": run(watch_trace, build_wait_compute(AbstractWorkload())),
            "checkpoint": run(watch_trace, build_checkpoint(AbstractWorkload())),
        }

    def test_nvp_beats_wait_compute_by_published_factor(self, results):
        ratio = results["nvp"].forward_progress / max(
            1, results["wait"].forward_progress
        )
        assert 1.8 <= ratio <= 8.0, f"NVP/wait-compute ratio {ratio:.2f}"

    def test_nvp_beats_software_checkpointing(self, results):
        assert (
            results["nvp"].forward_progress
            > results["checkpoint"].forward_progress
        )

    def test_nvp_sustains_many_backups_per_second(self, results):
        rate = results["nvp"].backups / results["nvp"].duration_s
        assert rate > 50  # hundreds of emergencies need hundreds of backups

    def test_nvp_loses_no_committed_work(self, results):
        assert results["nvp"].lost_instructions <= (
            0.05 * results["nvp"].total_executed
        )


class TestBackupEnergyShare:
    """Backups must consume a visible share (but not all) of income."""

    def test_backup_energy_fraction(self, watch_trace):
        result = run(watch_trace, build_nvp(AbstractWorkload()))
        fraction = result.backup_energy_j / max(result.consumed_j, 1e-18)
        assert 0.0 < fraction < 0.4


class TestRetentionRelaxedBackup:
    """Approximate (retention-relaxed) backup frees energy -> more FP."""

    def make_nvp(self, policy):
        config = NVPConfig(
            technology=STT_MRAM,
            retention_policy=policy,
            label=f"nvp-{policy.name if policy else 'precise'}",
        )
        return NVPPlatform(AbstractWorkload(), nvp_capacitor(), config, seed=0)

    def test_relaxed_backup_reduces_backup_energy(self, watch_trace):
        precise = run(watch_trace, self.make_nvp(None))
        relaxed = run(
            watch_trace,
            self.make_nvp(LogPolicy(10e-3, STT_MRAM.retention_s)),
        )
        per_backup_precise = precise.backup_energy_j / max(1, precise.backups)
        per_backup_relaxed = relaxed.backup_energy_j / max(1, relaxed.backups)
        assert per_backup_relaxed < per_backup_precise

    def test_policy_energy_ordering_log_linear_parabola(self, watch_trace):
        t_max = STT_MRAM.retention_s
        results = {}
        for policy in (
            LogPolicy(10e-3, t_max),
            LinearPolicy(10e-3, t_max),
            ParabolaPolicy(10e-3, t_max),
        ):
            result = run(watch_trace, self.make_nvp(policy))
            results[policy.name] = result.backup_energy_j / max(1, result.backups)
        assert results["log"] < results["linear"]
        assert results["log"] < results["parabola"]


class TestCapacitorSizing:
    """Forward progress vs capacitor size has an interior maximum:
    too small cannot cover backups, too large wastes charge time."""

    def test_tiny_cap_fails(self, watch_trace):
        tiny = build_nvp(AbstractWorkload(), capacitance_f=1e-9)
        huge = build_nvp(AbstractWorkload(), capacitance_f=150e-9)
        assert (
            run(watch_trace, tiny).forward_progress
            < run(watch_trace, huge).forward_progress
        )


class TestNVMTechnologyChoice:
    def test_flash_state_storage_is_impractical(self, watch_trace):
        """NOR-flash backup energy (nJ/bit) collapses forward progress
        versus FeRAM at wristwatch emergency rates."""
        from repro.nvm.technology import NOR_FLASH

        feram = run(watch_trace, build_nvp(AbstractWorkload()))
        flash_nvp = NVPPlatform(
            AbstractWorkload(),
            nvp_capacitor(2.2e-6),  # flash needs a far bigger reservoir
            NVPConfig(technology=NOR_FLASH, label="nvp-flash"),
            seed=0,
        )
        flash = run(watch_trace, flash_nvp)
        assert feram.forward_progress > 2 * flash.forward_progress
