"""Tests for the extension features: hybrid harvesting, endurance
lifetime, peripheral state, and the front-end storage facade."""

import numpy as np
import pytest

from repro.core.config import NVPConfig
from repro.core.nvp import NVPPlatform
from repro.harvest.sources import (
    combine_traces,
    constant_trace,
    hybrid_trace,
    solar_trace,
    thermal_trace,
    wristwatch_trace,
)
from repro.nvm.technology import FERAM, RERAM, STT_MRAM
from repro.storage.capacitor import Capacitor, ChargeEfficiency
from repro.storage.frontend import DualChannelFrontEnd, SingleChannelFrontEnd
from repro.system.peripherals import (
    ADC_10BIT,
    IMAGE_SENSOR,
    Peripheral,
    PeripheralSet,
)
from repro.system.simulator import SystemSimulator
from repro.workloads.base import AbstractWorkload


class TestHybridHarvesting:
    def test_combine_sums_pointwise(self):
        a = constant_trace(10e-6, 0.01)
        b = constant_trace(5e-6, 0.01)
        combined = combine_traces([a, b])
        assert combined.mean_power_w == pytest.approx(15e-6)
        assert combined.source == "hybrid"

    def test_combine_rejects_mismatched(self):
        a = constant_trace(1e-6, 0.01)
        b = constant_trace(1e-6, 0.02)
        with pytest.raises(ValueError):
            combine_traces([a, b])
        with pytest.raises(ValueError):
            combine_traces([])

    def test_hybrid_trace_sums_sources(self):
        trace = hybrid_trace(1.0, sources=("solar", "thermal"), seed=4)
        assert trace.source == "solar+thermal"
        # The hybrid mean is roughly the sum of the component means.
        assert trace.mean_power_w == pytest.approx(220e-6, rel=0.15)

    def test_hybrid_smooths_supply(self):
        """Adding a steady source to a bursty one lowers relative
        variability — the multi-source harvesting argument."""
        watch = wristwatch_trace(2.0, seed=9)
        hybrid = combine_traces(
            [watch, constant_trace(25e-6, 2.0)], source="watch+const"
        )
        cv_watch = watch.samples_w.std() / watch.mean_power_w
        cv_hybrid = hybrid.samples_w.std() / hybrid.mean_power_w
        assert cv_hybrid < cv_watch

    def test_hybrid_unknown_source(self):
        with pytest.raises(KeyError):
            hybrid_trace(1.0, sources=("solar", "fusion"))
        with pytest.raises(ValueError):
            hybrid_trace(1.0, sources=())

    def test_hybrid_deterministic(self):
        assert hybrid_trace(0.5, seed=3) == hybrid_trace(0.5, seed=3)


class TestEnduranceLifetime:
    def test_lifetime_formula(self):
        assert FERAM.lifetime_s(100.0) == pytest.approx(1e12)

    def test_reram_endurance_is_the_binding_constraint(self):
        """At ~200 backups/s, ReRAM's 1e8 endurance gives days of life
        while FeRAM and STT-MRAM last decades — the endurance screen."""
        rate = 200.0
        assert RERAM.lifetime_s(rate) < 10 * 86_400
        assert FERAM.lifetime_s(rate) > 3.15e7 * 10
        assert STT_MRAM.lifetime_s(rate) > 3.15e7 * 10

    def test_validation(self):
        with pytest.raises(ValueError):
            FERAM.lifetime_s(0.0)


def lossless_cap(capacitance=1e-6):
    return Capacitor(
        capacitance,
        v_max_v=3.3,
        leak_resistance_ohm=1e18,
        efficiency=ChargeEfficiency(1.0, 1.0, 0.0, 1.0),
    )


class TestPeripherals:
    def test_validation(self):
        with pytest.raises(ValueError):
            Peripheral("bad", reinit_instructions=-1)
        with pytest.raises(ValueError):
            Peripheral("bad", active_power_w=-1.0)

    def test_set_aggregates(self):
        periphs = PeripheralSet([ADC_10BIT, IMAGE_SENSOR])
        assert len(periphs) == 2
        assert periphs.active_power_w == pytest.approx(
            ADC_10BIT.active_power_w + IMAGE_SENSOR.active_power_w
        )
        energy, time_s = periphs.reinit_cost(0.3e-9, 1.3e-6)
        assert energy > ADC_10BIT.reinit_energy_j + IMAGE_SENSOR.reinit_energy_j
        assert time_s > ADC_10BIT.reinit_settle_s + IMAGE_SENSOR.reinit_settle_s

    def test_reinit_cost_validation(self):
        with pytest.raises(ValueError):
            PeripheralSet([ADC_10BIT]).reinit_cost(-1.0, 1.0)

    def test_peripheral_tax_erodes_forward_progress(self):
        """The same NVP with an attached image sensor makes visibly
        less progress: every wake-up pays the re-init tax and the run
        load carries the sensor bias."""
        from repro.harvest.sources import square_trace

        trace = square_trace(
            high_w=1000e-6, low_w=0.0, period_s=0.4, duty=0.3, duration_s=4.0
        )
        # The capacitor must be big enough to hold the sensor's wake-up
        # re-init energy (it is folded into the start threshold), and
        # the off-periods long enough to force real power-downs.
        bare = NVPPlatform(AbstractWorkload(), lossless_cap(2e-6), NVPConfig())
        bare_result = SystemSimulator(trace, bare, stop_when_finished=False).run()
        periphs = PeripheralSet([IMAGE_SENSOR])
        taxed = NVPPlatform(
            AbstractWorkload(), lossless_cap(2e-6), NVPConfig(),
            peripherals=periphs,
        )
        taxed_result = SystemSimulator(trace, taxed, stop_when_finished=False).run()
        assert taxed_result.forward_progress < bare_result.forward_progress
        assert periphs.reinits > 0
        assert taxed_result.extras["peripheral_reinits"] == periphs.reinits

    def test_empty_set_is_free(self):
        periphs = PeripheralSet()
        assert periphs.active_power_w == 0.0
        assert periphs.reinit_cost(1e-9, 1e-6) == (0.0, 0.0)


class TestFrontEndFacade:
    def test_facade_exposes_storage_interface(self):
        cap = lossless_cap()
        channel = DualChannelFrontEnd(cap)
        cap.set_energy(1e-7)
        assert channel.energy_j == pytest.approx(1e-7)
        assert channel.energy_max_j == cap.energy_max_j
        assert channel.draw(4e-8) == pytest.approx(4e-8)
        channel.set_energy(2e-8)
        assert cap.energy_j == pytest.approx(2e-8)

    def test_nvp_runs_on_dual_channel_frontend(self):
        """A platform accepts the front end in place of raw storage."""
        from repro.harvest.sources import square_trace

        trace = square_trace(
            high_w=500e-6, low_w=0.0, period_s=0.1, duty=0.5, duration_s=2.0
        )
        channel = DualChannelFrontEnd(lossless_cap(100e-9), bypass_efficiency=0.95)
        platform = NVPPlatform(AbstractWorkload(), channel, NVPConfig())
        result = SystemSimulator(trace, platform, stop_when_finished=False).run()
        assert result.forward_progress > 0
        assert channel.total_bypassed_j > 0

    def test_dual_channel_beats_single_on_lossy_storage(self):
        """With a conversion-lossy capacitor, the bypass path wins."""
        from repro.harvest.sources import square_trace

        def lossy_cap():
            return Capacitor(
                150e-9, v_max_v=3.3, leak_resistance_ohm=1e9,
                efficiency=ChargeEfficiency(0.6, 0.4, 2.0, 2.0),
            )

        trace = square_trace(
            high_w=400e-6, low_w=0.0, period_s=0.02, duty=0.5, duration_s=3.0
        )
        single = NVPPlatform(
            AbstractWorkload(), SingleChannelFrontEnd(lossy_cap()), NVPConfig()
        )
        dual = NVPPlatform(
            AbstractWorkload(),
            DualChannelFrontEnd(lossy_cap(), bypass_efficiency=0.95),
            NVPConfig(),
        )
        single_result = SystemSimulator(trace, single, stop_when_finished=False).run()
        dual_result = SystemSimulator(trace, dual, stop_when_finished=False).run()
        assert dual_result.forward_progress > single_result.forward_progress
