"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["simulate", "--platform", "nvp"],
            ["compare", "--duration", "3"],
            ["outages", "--source", "solar"],
            ["kernels"],
            ["techs"],
        ],
    )
    def test_valid_commands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.func)


class TestCommands:
    def test_techs_prints_catalog(self, capsys):
        assert main(["techs"]) == 0
        out = capsys.readouterr().out
        assert "FeRAM" in out
        assert "NOR-Flash" in out

    def test_kernels_lists_suite(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        for name in ("sobel", "median", "crc", "dft"):
            assert name in out

    def test_outages_reports_statistics(self, capsys):
        assert main(["outages", "--duration", "1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "outages" in out
        assert "supply duty" in out

    def test_simulate_abstract(self, capsys):
        assert main([
            "simulate", "--platform", "nvp", "--duration", "1", "--seed", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "FP=" in out

    def test_simulate_kernel_bit_exact(self, capsys):
        assert main([
            "simulate", "--platform", "nvp", "--kernel", "crc",
            "--frames", "2", "--duration", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "bit-exact" in out

    def test_simulate_with_mean_rescale(self, capsys):
        assert main([
            "simulate", "--duration", "1", "--mean-uw", "40",
        ]) == 0
        out = capsys.readouterr().out
        assert "mean=40uW" in out

    def test_compare_reports_ratio(self, capsys):
        assert main(["compare", "--duration", "2", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "nvp / wait-compute" in out

    def test_hybrid_source(self, capsys):
        assert main([
            "outages", "--source", "hybrid", "--duration", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "solar+thermal" in out


class TestToolchainCommands:
    @pytest.fixture
    def nvc_file(self, tmp_path):
        path = tmp_path / "prog.nvc"
        path.write_text(
            "int total;\n"
            "func main() { int i;\n"
            "  for (i = 0; i < 4; i = i + 1) { total = total + i; }\n"
            "  out(total); }\n"
        )
        return str(path)

    def test_compile_reports_size_and_lint(self, capsys, nvc_file):
        assert main(["compile", nvc_file]) == 0
        out = capsys.readouterr().out
        assert "instructions" in out
        assert "self-accumulate" in out  # 'total' accumulator flagged

    def test_compile_run_prints_outputs(self, capsys, nvc_file):
        assert main(["compile", nvc_file, "--run"]) == 0
        out = capsys.readouterr().out
        assert "outputs: [6]" in out

    def test_compile_emit_asm(self, capsys, nvc_file):
        assert main(["compile", nvc_file, "--emit-asm"]) == 0
        out = capsys.readouterr().out
        assert "fn_main:" in out

    def test_profile_kernel(self, capsys):
        assert main(["profile", "--kernel", "crc", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out
        assert "bitloop" in out

    def test_profile_file(self, capsys, nvc_file):
        assert main(["profile", "--file", nvc_file]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out

    def test_profile_needs_target(self, capsys):
        assert main(["profile"]) == 2


class TestJsonAndOptimize:
    def test_simulate_json(self, capsys):
        import json

        assert main(["simulate", "--duration", "1", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["label"] == "nvp"
        assert data["forward_progress"] > 0
        assert "state_time_s" in data

    def test_compile_optimize_flag(self, capsys, tmp_path):
        path = tmp_path / "opt.nvc"
        path.write_text("func main() { out(2 + 3 * 4); }\n")
        assert main(["compile", str(path), "-O", "--run"]) == 0
        out = capsys.readouterr().out
        assert "outputs: [14]" in out


class TestObservabilityFlags:
    """Every documented exporter flag is accepted and produces its file."""

    EXPORT_FLAGS = ("--trace", "--events", "--metrics", "--manifest")

    @pytest.mark.parametrize("command", ["simulate", "observe"])
    def test_help_documents_every_exporter_flag(self, capsys, command):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for flag in self.EXPORT_FLAGS:
            assert flag in out

    @pytest.mark.parametrize("command", ["simulate", "observe"])
    def test_every_exporter_flag_produces_its_artifact(
        self, capsys, tmp_path, command
    ):
        paths = {
            "--trace": tmp_path / "trace.json",
            "--events": tmp_path / "events.jsonl",
            "--metrics": tmp_path / "metrics.csv",
            "--manifest": tmp_path / "manifest.json",
        }
        argv = [command, "--duration", "0.5", "--seed", "2"]
        for flag, path in paths.items():
            argv.extend([flag, str(path)])
        assert main(argv) == 0
        out = capsys.readouterr().out
        for flag, path in paths.items():
            assert path.exists(), f"{flag} produced no artifact"
            assert path.stat().st_size > 0
        for label in ("trace", "events", "metrics", "manifest"):
            assert label in out

    def test_instrumented_simulate_keeps_fast_path(self, capsys, tmp_path):
        """Exporter flags must not force the exact engine (PR 5)."""
        import json

        from repro.obs import load_chrome_trace

        trace_path = tmp_path / "trace.json"
        events_path = tmp_path / "events.jsonl"
        assert main([
            "simulate", "--duration", "1", "--seed", "2", "--json",
            "--trace", str(trace_path), "--events", str(events_path),
        ]) == 0
        instrumented = json.loads(capsys.readouterr().out)
        assert load_chrome_trace(str(trace_path))
        lines = [json.loads(line) for line in
                 events_path.read_text().splitlines()]
        assert all(record["name"] != "sim.tick" for record in lines)
        assert main(["simulate", "--duration", "1", "--seed", "2",
                     "--json"]) == 0
        plain = json.loads(capsys.readouterr().out)
        assert instrumented == plain

    def test_simulate_sample_stride_emits_samples(self, tmp_path):
        import json

        events_path = tmp_path / "events.jsonl"
        assert main([
            "simulate", "--duration", "0.5", "--seed", "2",
            "--sample-stride", "1000", "--events", str(events_path),
        ]) == 0
        names = [json.loads(line)["name"] for line in
                 events_path.read_text().splitlines()]
        assert names.count("sim.sample") == 5  # 5000 ticks / 1000

    def test_sweep_trace_writes_timeline(self, capsys, tmp_path):
        import json

        from repro.obs import load_chrome_trace

        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "name": "cli_trace_smoke",
            "base": {"source": "wristwatch", "duration_s": 0.2, "seed": 3},
            "axes": {"platform": ["nvp", "wait"]},
        }))
        trace_path = tmp_path / "sweep-trace.json"
        assert main([
            "sweep", str(spec), "--quiet", "--no-cache",
            "--trace", str(trace_path),
        ]) == 0
        assert "trace" in capsys.readouterr().out
        events = load_chrome_trace(str(trace_path))
        names = {event["name"] for event in events}
        assert "sweep" in names and "simulate" in names


class TestAllPlatformChoices:
    @pytest.mark.parametrize("platform", ["nvp", "wait", "checkpoint", "oracle"])
    def test_simulate_every_platform(self, capsys, platform):
        assert main([
            "simulate", "--platform", platform, "--duration", "1", "--seed", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "result" in out
