"""Span tracing: the sweep wall-clock timeline (repro sweep --trace)."""

import json

import pytest

from repro.exp import ResultCache, SweepRunner
from repro.obs import SpanTracer, load_chrome_trace
from repro.obs.spans import TID_RUNNER


def sweep_config(label, seed=1):
    return {
        "source": "wristwatch",
        "duration_s": 0.2,
        "seed": seed,
        "platform": "nvp",
        "label": label,
    }


class TestSpanTracer:
    def test_add_records_interval(self):
        tracer = SpanTracer()
        span = tracer.add("fold", 10.0, 10.5, status="ok")
        assert span.duration_s == pytest.approx(0.5)
        assert span.tid == TID_RUNNER
        assert tracer.named("fold") == [span]

    def test_negative_duration_clamped(self):
        tracer = SpanTracer()
        assert tracer.add("x", 2.0, 1.0).duration_s == 0.0

    def test_span_context_manager_collects_attrs(self):
        tracer = SpanTracer()
        with tracer.span("cache.get", key="abc") as attrs:
            attrs["hit"] = True
        (span,) = tracer.named("cache.get")
        assert span.args == {"key": "abc", "hit": True}

    def test_span_records_on_exception(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("run:x"):
                raise RuntimeError("boom")
        assert len(tracer.named("run:x")) == 1

    def test_import_worker_groups_by_pid(self):
        tracer = SpanTracer()
        tracer.add("sweep", 0.0, 1.0)
        tracer.import_worker(
            [{"name": "simulate", "start_s": 0.1, "end_s": 0.9,
              "args": {"label": "a"}}],
            pid=1234,
        )
        assert tracer.threads() == [TID_RUNNER, "worker-1234"]
        (span,) = tracer.named("simulate")
        assert span.tid == "worker-1234"
        assert span.args == {"label": "a"}

    def test_to_chrome_validates_and_rebases(self):
        tracer = SpanTracer()
        tracer.add("sweep", 100.0, 101.0)
        tracer.import_worker(
            [{"name": "simulate", "start_s": 100.2, "end_s": 100.8}], pid=9
        )
        events = tracer.to_chrome(process_name="test sweep")
        durations = [e for e in events if e["ph"] == "X"]
        assert min(e["ts"] for e in durations) == 0.0
        metas = {e["name"] for e in events if e["ph"] == "M"}
        assert metas == {"process_name", "thread_name"}

    def test_write_chrome_roundtrips_through_validator(self, tmp_path):
        tracer = SpanTracer()
        with tracer.span("sweep", points=1):
            pass
        path = tmp_path / "trace.json"
        count = tracer.write_chrome(str(path))
        events = load_chrome_trace(str(path))
        assert len(events) == count
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"


class TestRunnerIntegration:
    def test_serial_sweep_records_full_hierarchy(self, tmp_path):
        tracer = SpanTracer()
        cache = ResultCache(str(tmp_path / "cache"))
        runner = SweepRunner(jobs=1, cache=cache, tracer=tracer)
        runner.run([sweep_config("a")]).raise_on_failure()
        names = {span.name for span in tracer.spans}
        assert {"sweep", "run:a", "cache.get", "cache.put",
                "build", "simulate"} <= names
        (get,) = tracer.named("cache.get")
        assert get.args["hit"] is False
        (sweep,) = tracer.named("sweep")
        assert sweep.args["executed"] == 1 and sweep.args["cached"] == 0
        # Worker spans landed on a worker thread, runner spans on runner.
        assert tracer.named("simulate")[0].tid.startswith("worker-")
        assert tracer.named("run:a")[0].tid == TID_RUNNER

    def test_cache_hit_attribution_on_second_sweep(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        SweepRunner(jobs=1, cache=cache).run(
            [sweep_config("a")]
        ).raise_on_failure()
        tracer = SpanTracer()
        cache.tracer = None  # fresh attach, as the CLI does per sweep
        runner = SweepRunner(jobs=1, cache=cache, tracer=tracer)
        outcome = runner.run([sweep_config("a")])
        assert outcome.cached == 1
        (get,) = tracer.named("cache.get")
        assert get.args["hit"] is True
        assert tracer.named("simulate") == []

    def test_pool_sweep_merges_worker_spans(self, tmp_path):
        tracer = SpanTracer()
        runner = SweepRunner(jobs=2, tracer=tracer)
        runner.run(
            [sweep_config("a", seed=1), sweep_config("b", seed=2)]
        ).raise_on_failure()
        labels = {span.args.get("label") for span in tracer.named("simulate")}
        assert labels == {"a", "b"}
        assert len(tracer.named("collect:a")) == 1
        assert all(t == TID_RUNNER or t.startswith("worker-")
                   for t in tracer.threads())

    def test_untraced_runner_records_nothing(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        runner = SweepRunner(jobs=1, cache=cache)
        runner.run([sweep_config("a")]).raise_on_failure()
        assert runner.tracer is None and cache.tracer is None
