"""Tests for the NVC constant folder / branch pruner."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.cpu import CPU
from repro.lang import ast
from repro.lang.codegen import compile_source
from repro.lang.interp import interpret
from repro.lang.optimize import fold_expr, optimize
from repro.lang.parser import parse


def run(compiled, inputs=None):
    cpu = CPU(compiled.program.instructions)
    cpu.memory.load_image(compiled.program.data_image)
    if inputs:
        cpu.memory.input_queue.extend(inputs)
    cpu.run(max_instructions=300_000)
    assert cpu.state.halted
    return cpu.memory.output, cpu.instructions_retired


def expr_of(text):
    (stmt,) = parse(f"func main() {{ x = {text}; }}").functions[0].body
    return stmt.value


class TestExpressionFolding:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("2 + 3 * 4", 14),
            ("(0xFFFF + 2) * 3", 3),
            ("100 / 0", 0xFFFF),
            ("7 % 0", 7),
            ("1 << 20", 16),          # shift mod 16
            ("0xFFFF < 1", 1),        # signed compare
            ("-(5)", 0xFFFB),
            ("!0 + !7", 1),
            ("~0xFF00", 0x00FF),
            ("0 && 1", 0),
            ("3 || 0", 1),
        ],
    )
    def test_constant_expressions_fold_to_num(self, text, value):
        folded = fold_expr(expr_of(text))
        assert isinstance(folded, ast.Num)
        assert folded.value == value

    def test_partial_folding_keeps_variables(self):
        folded = fold_expr(expr_of("y + (2 * 8)"))
        assert isinstance(folded, ast.Binary)
        assert isinstance(folded.right, ast.Num)
        assert folded.right.value == 16

    def test_short_circuit_folding_respects_calls(self):
        """`f() && 0` must NOT fold away the call to f()."""
        folded = fold_expr(expr_of("f() && 0"))
        assert isinstance(folded, ast.Logical)


class TestStatementPruning:
    def test_constant_true_if_inlines_then(self):
        program = optimize(parse("func main() { if (1) { out(7); } else { out(8); } }"))
        body = program.function("main").body
        assert len(body) == 1
        assert isinstance(body[0], ast.Out)

    def test_constant_false_if_inlines_else(self):
        program = optimize(parse("func main() { if (0) { out(7); } else { out(8); } }"))
        (stmt,) = program.function("main").body
        assert isinstance(stmt.value, ast.Num) and stmt.value.value == 8

    def test_while_zero_removed(self):
        program = optimize(parse("func main() { while (0) { out(1); } out(2); }"))
        assert len(program.function("main").body) == 1

    def test_for_zero_keeps_init(self):
        program = optimize(
            parse("func main() { int i; for (i = 9; 0; i = i + 1) { } out(i); }")
        )
        kinds = [type(s).__name__ for s in program.function("main").body]
        assert kinds == ["LocalDecl", "Assign", "Out"]

    def test_dead_expression_statement_removed(self):
        # A bare call must stay; a bare constant must go.
        program = optimize(parse("func f() { } func main() { f(); }"))
        assert len(program.function("main").body) == 1


class TestEndToEnd:
    SOURCE = """
    int table[4] = {10, 20, 30, 40};
    func scale(x) { return x * (1 << 3) / 8; }
    func main() {
        int i;
        if (2 + 2 == 4) { out(scale(table[1 + 1])); }
        for (i = 0; i < 2 * 2; i = i + 1) { out(table[i] + (100 - 99)); }
        while (0) { out(12345); }
    }
    """

    def test_optimized_output_identical(self):
        plain = compile_source(self.SOURCE, optimize=False)
        optimised = compile_source(self.SOURCE, optimize=True)
        out_plain, n_plain = run(plain)
        out_opt, n_opt = run(optimised)
        assert out_plain == out_opt == interpret(self.SOURCE).outputs
        assert n_opt < n_plain  # folding saved real instructions

    def test_optimizer_shrinks_binary(self):
        plain = compile_source(self.SOURCE, optimize=False)
        optimised = compile_source(self.SOURCE, optimize=True)
        assert len(optimised.program.instructions) < len(plain.program.instructions)


_NUMS = st.integers(0, 0xFFFF)
_OPS = ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
        "==", "!=", "<", "<=", ">", ">=")


def _expr_strategy():
    def extend(children):
        return st.one_of(
            st.tuples(st.sampled_from(_OPS), children, children).map(
                lambda t: f"({t[1]} {t[0]} {t[2]})"
            ),
            st.tuples(st.sampled_from(("-", "~", "!")), children).map(
                lambda t: f"({t[0]}{t[1]})"
            ),
        )

    leaves = st.one_of(_NUMS.map(str), st.sampled_from(("g0", "g1")))
    return st.recursive(leaves, extend, max_leaves=10)


@given(expr=_expr_strategy(), g0=_NUMS, g1=_NUMS)
@settings(max_examples=100, deadline=None)
def test_differential_optimizer_fuzz(expr, g0, g1):
    """Property: optimised and unoptimised binaries agree with the
    interpreter on every generated expression."""
    source = f"""
    int g0 = {g0};
    int g1 = {g1};
    func main() {{ out({expr}); }}
    """
    expected = interpret(source).outputs
    for optimize_flag in (False, True):
        compiled = compile_source(source, optimize=optimize_flag)
        outputs, _ = run(compiled)
        assert outputs == expected, (optimize_flag, source)
