"""Statistical tests for the power-trace generators."""

import numpy as np
import pytest

from repro.harvest.outage import DEFAULT_THRESHOLD_W, analyze_outages
from repro.harvest.sources import (
    SOURCE_GENERATORS,
    constant_trace,
    rf_trace,
    solar_trace,
    square_trace,
    standard_profiles,
    thermal_trace,
    wristwatch_trace,
)


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(SOURCE_GENERATORS))
    def test_same_seed_same_trace(self, name):
        gen = SOURCE_GENERATORS[name]
        assert gen(0.5, seed=5) == gen(0.5, seed=5)

    @pytest.mark.parametrize("name", sorted(SOURCE_GENERATORS))
    def test_different_seed_different_trace(self, name):
        gen = SOURCE_GENERATORS[name]
        assert gen(0.5, seed=5) != gen(0.5, seed=6)


class TestDeterministicSources:
    def test_constant(self):
        trace = constant_trace(5e-6, 0.01)
        assert trace.mean_power_w == pytest.approx(5e-6)
        assert trace.peak_power_w == pytest.approx(5e-6)

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            constant_trace(-1.0, 0.01)

    def test_square_duty(self):
        trace = square_trace(100e-6, 0.0, period_s=0.01, duty=0.3, duration_s=1.0)
        on_fraction = np.mean(trace.samples_w > 0)
        assert on_fraction == pytest.approx(0.3, abs=0.01)

    def test_square_validation(self):
        with pytest.raises(ValueError):
            square_trace(1.0, 0.0, period_s=0.0, duty=0.5, duration_s=1.0)
        with pytest.raises(ValueError):
            square_trace(1.0, 0.0, period_s=0.1, duty=1.5, duration_s=1.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            constant_trace(1.0, 0.0)


class TestWristwatchEnvelope:
    """The generator must reproduce the published wristwatch statistics."""

    @pytest.fixture(scope="class")
    def trace(self):
        return wristwatch_trace(10.0, seed=42)

    def test_mean_in_published_band(self, trace):
        assert 10e-6 <= trace.mean_power_w <= 40e-6

    def test_peak_reaches_published_swings(self, trace):
        assert trace.peak_power_w > 1000e-6
        assert trace.peak_power_w <= 2000e-6

    def test_emergency_count_in_published_band(self, trace):
        """1000-2000 power emergencies per 10 s at the 33 uW threshold."""
        stats = analyze_outages(trace, DEFAULT_THRESHOLD_W)
        assert 800 <= stats.count <= 2500

    def test_outages_mostly_millisecond_scale(self, trace):
        stats = analyze_outages(trace, DEFAULT_THRESHOLD_W)
        durations = np.asarray(stats.durations_s)
        assert np.median(durations) < 50e-3

    def test_requested_mean_is_honoured(self):
        trace = wristwatch_trace(5.0, mean_power_w=18e-6, seed=3)
        assert trace.mean_power_w == pytest.approx(18e-6, rel=0.05)


class TestOtherSources:
    def test_solar_is_smoother_than_wristwatch(self):
        solar = solar_trace(5.0, seed=1)
        watch = wristwatch_trace(5.0, seed=1)
        solar_cv = solar.samples_w.std() / solar.mean_power_w
        watch_cv = watch.samples_w.std() / watch.mean_power_w
        assert solar_cv < watch_cv

    def test_solar_mean(self):
        trace = solar_trace(5.0, mean_power_w=150e-6, seed=2)
        assert trace.mean_power_w == pytest.approx(150e-6, rel=1e-6)

    def test_rf_is_bursty_on_off(self):
        trace = rf_trace(5.0, seed=2)
        median = np.median(trace.samples_w)
        p95 = np.percentile(trace.samples_w, 95)
        assert p95 > 5 * median  # strong on/off contrast

    def test_rf_duty_validation(self):
        with pytest.raises(ValueError):
            rf_trace(1.0, duty=0.0)

    def test_thermal_is_nearly_constant(self):
        trace = thermal_trace(5.0, seed=3)
        cv = trace.samples_w.std() / trace.mean_power_w
        assert cv < 0.2


class TestStandardProfiles:
    def test_five_profiles_by_default(self):
        profiles = standard_profiles(duration_s=0.5)
        assert len(profiles) == 5
        assert [p.source for p in profiles] == [
            f"profile-{i}" for i in range(1, 6)
        ]

    def test_profiles_differ(self):
        profiles = standard_profiles(duration_s=0.5)
        assert profiles[0] != profiles[1]

    def test_profiles_are_deterministic(self):
        a = standard_profiles(duration_s=0.5, seed=9)
        b = standard_profiles(duration_s=0.5, seed=9)
        assert all(x == y for x, y in zip(a, b))

    def test_count_validation(self):
        with pytest.raises(ValueError):
            standard_profiles(count=0)
