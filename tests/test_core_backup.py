"""Unit tests for backup strategies and the backup controller."""

import numpy as np
import pytest

from repro.core.backup import (
    BackupController,
    CompareAndWriteBackup,
    FullBackup,
    IncrementalWordBackup,
    strategy_by_name,
)
from repro.core.config import NVPConfig
from repro.nvm.retention import LinearPolicy
from repro.nvm.technology import FERAM, STT_MRAM


class TestStrategies:
    def test_full_always_writes_everything(self):
        strategy = FullBackup()
        bits, dirty = strategy.bits_to_write([1, 2, 3], [1, 2, 3])
        assert bits == 48
        assert dirty == [0, 1, 2]

    def test_compare_and_write_counts_hamming_distance(self):
        strategy = CompareAndWriteBackup()
        bits, dirty = strategy.bits_to_write([0b1010, 0b0000], [0b1000, 0b0000])
        assert bits == 1  # only bit 1 of word 0 differs
        assert dirty == [0]

    def test_compare_and_write_first_backup_is_full(self):
        strategy = CompareAndWriteBackup()
        bits, dirty = strategy.bits_to_write([1, 2], None)
        assert bits == 32
        assert dirty == [0, 1]

    def test_compare_and_write_identical_writes_nothing(self):
        strategy = CompareAndWriteBackup()
        bits, dirty = strategy.bits_to_write([7, 8], [7, 8])
        assert bits == 0
        assert dirty == []

    def test_incremental_word_granularity(self):
        strategy = IncrementalWordBackup()
        bits, dirty = strategy.bits_to_write([1, 2, 3], [1, 9, 3])
        assert bits == 16
        assert dirty == [1]

    def test_length_mismatch_treated_as_full(self):
        strategy = CompareAndWriteBackup()
        bits, _ = strategy.bits_to_write([1, 2, 3], [1, 2])
        assert bits == 48

    def test_strategy_by_name(self):
        assert isinstance(strategy_by_name("full"), FullBackup)
        assert isinstance(
            strategy_by_name("compare_and_write"), CompareAndWriteBackup
        )
        with pytest.raises(KeyError):
            strategy_by_name("bogus")

    def test_strategy_ordering_on_small_change(self):
        """For a one-bit register change: compare-and-write < incremental < full."""
        now = [0x1001, 5, 6, 7]
        prev = [0x1000, 5, 6, 7]
        full, _ = FullBackup().bits_to_write(now, prev)
        incr, _ = IncrementalWordBackup().bits_to_write(now, prev)
        caw, _ = CompareAndWriteBackup().bits_to_write(now, prev)
        assert caw < incr < full


class TestController:
    def make_controller(self, **config_kwargs):
        config = NVPConfig(**config_kwargs)
        return BackupController(config, data_words=8)

    def test_plan_does_not_mutate(self):
        controller = self.make_controller()
        controller.plan_backup([1] * 8)
        assert not controller.has_image
        assert controller.backup_count == 0

    def test_backup_then_read_roundtrip(self, rng):
        controller = self.make_controller()
        words = [10, 20, 30, 40, 50, 60, 70, 80]
        controller.backup(words)
        restored, energy, time_s = controller.read_image()
        assert restored == words
        assert energy > 0
        assert time_s >= controller.config.technology.wakeup_time_s

    def test_read_without_image_rejected(self):
        controller = self.make_controller()
        with pytest.raises(RuntimeError):
            controller.read_image()

    def test_second_backup_cheaper_with_compare_and_write(self):
        controller = self.make_controller(backup_strategy="compare_and_write")
        first = controller.backup([1] * 8)
        second = controller.backup([1] * 8)  # identical image
        assert second.energy_j < first.energy_j
        assert second.bits_written < first.bits_written

    def test_full_strategy_cost_is_constant(self):
        controller = self.make_controller(backup_strategy="full")
        first = controller.backup([1] * 8)
        second = controller.backup([1] * 8)
        assert second.energy_j == pytest.approx(first.energy_j)

    def test_worst_case_energy_upper_bounds_plans(self):
        controller = self.make_controller(backup_strategy="compare_and_write")
        worst = controller.worst_case_backup_energy_j()
        plan = controller.plan_backup(list(range(8)))
        assert plan.energy_j <= worst * (1 + 1e-9)

    def test_backup_energy_scales_with_state_bits(self):
        small = BackupController(NVPConfig(state_bits=128), data_words=8)
        large = BackupController(NVPConfig(state_bits=1024), data_words=8)
        assert (
            large.worst_case_backup_energy_j() > small.worst_case_backup_energy_j()
        )

    def test_precise_image_survives_aging(self, rng):
        controller = self.make_controller()
        controller.backup(list(range(8)))
        flips = controller.age(3600.0, rng)
        assert flips == 0
        words, _, _ = controller.read_image()
        assert words == list(range(8))

    def test_relaxed_image_corrupts_after_long_outage(self, rng):
        config = NVPConfig(
            technology=STT_MRAM,
            retention_policy=LinearPolicy(1e-4, STT_MRAM.retention_s),
        )
        controller = BackupController(config, data_words=8)
        controller.backup([0] * 8)
        flips = controller.age(1.0, rng)
        assert flips > 0
        assert controller.total_flipped_bits == flips

    def test_aging_before_any_backup_is_noop(self, rng):
        controller = self.make_controller()
        assert controller.age(100.0, rng) == 0

    def test_data_words_validation(self):
        controller = self.make_controller()
        with pytest.raises(ValueError):
            controller.backup([1, 2, 3])  # wrong length

    def test_zero_data_words_supported(self):
        controller = BackupController(NVPConfig(), data_words=0)
        result = controller.backup([])
        assert result.bits_written > 0  # control state still written

    def test_restore_costs_positive(self):
        controller = self.make_controller()
        assert controller.restore_energy_j() > 0
        assert controller.restore_time_s() >= FERAM.wakeup_time_s

    def test_relaxed_backup_cheaper_than_precise(self):
        precise = BackupController(NVPConfig(technology=STT_MRAM), data_words=8)
        relaxed = BackupController(
            NVPConfig(
                technology=STT_MRAM,
                retention_policy=LinearPolicy(1e-3, STT_MRAM.retention_s),
            ),
            data_words=8,
        )
        assert (
            relaxed.worst_case_backup_energy_j()
            < precise.worst_case_backup_energy_j()
        )
