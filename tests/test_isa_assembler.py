"""Unit tests for the NV16 assembler."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instructions import Opcode
from repro.isa.memory import NVM_BASE


def ops(source):
    return [i.opcode for i in assemble(source).instructions]


class TestBasicSyntax:
    def test_empty_source_is_empty_program(self):
        assert len(assemble("")) == 0

    def test_comments_are_ignored(self):
        src = """
        ; semicolon comment
        # hash comment
        // slash comment
        nop ; trailing
        """
        assert ops(src) == [Opcode.NOP]

    def test_three_operand_alu(self):
        prog = assemble("add r1, r2, r3")
        instr = prog.instructions[0]
        assert (instr.opcode, instr.rd, instr.rs1, instr.rs2) == (
            Opcode.ADD, 1, 2, 3,
        )

    def test_immediate_forms(self):
        prog = assemble("addi r1, r0, -5\nandi r2, r1, 0xFF")
        assert prog.instructions[0].imm == -5
        assert prog.instructions[1].imm == 0xFF

    def test_char_literal_immediate(self):
        prog = assemble("addi r1, r0, 'a'")
        assert prog.instructions[0].imm == ord("a")

    def test_register_aliases(self):
        prog = assemble("add sp, lr, zero")
        instr = prog.instructions[0]
        assert (instr.rd, instr.rs1, instr.rs2) == (7, 6, 0)

    def test_memory_operands(self):
        prog = assemble("ld r1, 4(r2)\nst r3, -2(r4)")
        load, store = prog.instructions
        assert (load.rd, load.rs1, load.imm) == (1, 2, 4)
        assert (store.rs2, store.rs1, store.imm) == (3, 4, -2)

    def test_case_insensitive_mnemonics(self):
        assert ops("ADD r1, r2, r3\nAdD r1, r2, r3") == [Opcode.ADD, Opcode.ADD]


class TestLabels:
    def test_forward_reference(self):
        prog = assemble("jmp end\nnop\nend: halt")
        assert prog.instructions[0].imm == 2

    def test_backward_reference(self):
        prog = assemble("top: nop\njmp top")
        assert prog.instructions[1].imm == 0

    def test_label_on_own_line(self):
        prog = assemble("loop:\n    nop\n    jmp loop")
        assert prog.symbols["loop"] == 0

    def test_multiple_labels_same_line(self):
        prog = assemble("a: b: nop")
        assert prog.symbols["a"] == prog.symbols["b"] == 0

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("x: nop\nx: nop")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AssemblerError, match="undefined"):
            assemble("jmp nowhere")

    def test_symbol_arithmetic(self):
        prog = assemble(
            """
            .data 0x8000
            arr: .word 1, 2, 3
            .text
            li r1, arr+2
            li r2, arr-1
            """
        )
        assert prog.instructions[0].imm == 0x8002
        assert prog.instructions[1].imm == 0x7FFF


class TestDataDirectives:
    def test_word_directive(self):
        prog = assemble(".data 0x8000\nvals: .word 1, 2, 0xFFFF")
        assert prog.data_image == {0x8000: 1, 0x8001: 2, 0x8002: 0xFFFF}

    def test_default_data_origin_is_nvm_base(self):
        prog = assemble(".data\nx: .word 9")
        assert prog.data_image == {NVM_BASE: 9}

    def test_space_directive_with_fill(self):
        prog = assemble(".data 0x9000\nbuf: .space 3, 7")
        assert prog.data_image == {0x9000: 7, 0x9001: 7, 0x9002: 7}

    def test_org_moves_cursor(self):
        prog = assemble(".data 0x8000\n.org 0x8010\nx: .word 5")
        assert prog.symbols["x"] == 0x8010

    def test_word_values_truncated_to_16_bits(self):
        prog = assemble(".data 0x8000\nx: .word 0x1FFFF")
        assert prog.data_image[0x8000] == 0xFFFF

    def test_word_outside_data_section_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".word 1")

    def test_instruction_in_data_section_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".data\nnop")

    def test_data_label_usable_as_load_offset(self):
        prog = assemble(
            """
            .data 0x8000
            val: .word 42
            .text
            ld r1, val(r0)
            """
        )
        assert prog.instructions[0].imm == 0x8000


class TestPseudoInstructions:
    def test_li_expands_to_addi(self):
        prog = assemble("li r3, 77")
        instr = prog.instructions[0]
        assert (instr.opcode, instr.rd, instr.rs1, instr.imm) == (
            Opcode.ADDI, 3, 0, 77,
        )

    def test_mov_expands_to_add(self):
        instr = assemble("mov r2, r5").instructions[0]
        assert (instr.opcode, instr.rd, instr.rs1, instr.rs2) == (
            Opcode.ADD, 2, 5, 0,
        )

    def test_jmp_call_ret(self):
        prog = assemble("f: ret\nmain: call f\njmp main")
        ret_i, call_i, jmp_i = prog.instructions
        assert (ret_i.opcode, ret_i.rs1) == (Opcode.JALR, 6)
        assert (call_i.opcode, call_i.rd, call_i.imm) == (Opcode.JAL, 6, 0)
        assert (jmp_i.opcode, jmp_i.rd, jmp_i.imm) == (Opcode.JAL, 0, 1)

    def test_inc_dec(self):
        prog = assemble("inc r1\ndec r1")
        assert prog.instructions[0].imm == 1
        assert prog.instructions[1].imm == -1

    def test_not_neg(self):
        prog = assemble("not r1, r2\nneg r3, r4")
        assert prog.instructions[0].opcode is Opcode.XORI
        assert prog.instructions[0].imm == 0xFFFF
        assert prog.instructions[1].opcode is Opcode.SUB
        assert prog.instructions[1].rs2 == 4

    def test_beqz_bnez(self):
        prog = assemble("x: beqz r1, x\nbnez r2, x")
        assert prog.instructions[0].opcode is Opcode.BEQ
        assert prog.instructions[1].opcode is Opcode.BNE

    def test_swapped_branches(self):
        prog = assemble("x: bgt r1, r2, x\nble r1, r2, x")
        bgt_i, ble_i = prog.instructions
        assert (bgt_i.opcode, bgt_i.rs1, bgt_i.rs2) == (Opcode.BLT, 2, 1)
        assert (ble_i.opcode, ble_i.rs1, ble_i.rs2) == (Opcode.BGE, 2, 1)

    def test_pseudo_label_addresses_account_for_expansion(self):
        # All pseudos expand to exactly one instruction.
        prog = assemble("li r1, 1\nmov r2, r1\nend: halt")
        assert prog.symbols["end"] == 2


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "frobnicate r1, r2, r3",
            "add r1, r2",
            "add r1, r2, r3, r4",
            "ld r1, r2",
            "addi r1, r0, 200000",
            ".bogus 3",
            "add r9, r1, r2",
        ],
    )
    def test_rejected_sources(self, bad):
        with pytest.raises(AssemblerError):
            assemble(bad)

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble("nop\nnop\nbad r1\n")


class TestEncodedWords:
    def test_words_match_instructions(self):
        from repro.isa.instructions import decode

        prog = assemble("add r1, r2, r3\nli r4, 9\nhalt")
        assert [decode(w) for w in prog.words] == prog.instructions
