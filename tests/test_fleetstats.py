"""Streaming population statistics: P² sketches, histograms, co-outage."""

import math

import numpy as np
import pytest

from repro.obs.fleetstats import (
    DIGEST_QUANTILES,
    FixedBinHistogram,
    P2Quantile,
    QuantileDigest,
    co_outage_matrix,
    find_storms,
    windowed_outages,
)


class TestP2Quantile:
    def test_rejects_degenerate_quantiles(self):
        for q in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                P2Quantile(q)

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value)

    def test_exact_below_five_observations(self):
        sketch = P2Quantile(0.5)
        for x in (3.0, 1.0, 2.0):
            sketch.observe(x)
        assert sketch.value == 2.0
        sketch.observe(4.0)
        assert sketch.value == 2.5  # interpolated median of 4

    @pytest.mark.parametrize("q", [0.05, 0.5, 0.95])
    def test_tracks_numpy_percentile(self, q):
        rng = np.random.default_rng(7)
        values = rng.normal(10.0, 3.0, size=5000)
        sketch = P2Quantile(q)
        for x in values:
            sketch.observe(x)
        exact = float(np.percentile(values, q * 100))
        spread = float(values.max() - values.min())
        assert abs(sketch.value - exact) < 0.05 * spread
        assert sketch.count == values.size

    def test_skewed_stream(self):
        rng = np.random.default_rng(11)
        values = rng.exponential(2.0, size=8000)
        sketch = P2Quantile(0.95)
        for x in values:
            sketch.observe(x)
        exact = float(np.percentile(values, 95))
        assert abs(sketch.value - exact) / exact < 0.15

    def test_constant_stream(self):
        sketch = P2Quantile(0.5)
        for _ in range(100):
            sketch.observe(5.0)
        assert sketch.value == 5.0

    def test_deterministic(self):
        a, b = P2Quantile(0.5), P2Quantile(0.5)
        values = np.sin(np.arange(300, dtype=np.float64))
        for x in values:
            a.observe(x)
            b.observe(x)
        assert a.value == b.value


class TestQuantileDigest:
    def test_empty_summary_is_count_only(self):
        assert QuantileDigest().summary() == {"count": 0}

    def test_exact_aggregates(self):
        digest = QuantileDigest()
        values = [4.0, 1.0, 3.0, 2.0]
        for x in values:
            digest.observe(x)
        summary = digest.summary()
        assert summary["count"] == 4
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == 2.5
        assert set(summary) == {
            "count", "min", "max", "mean", "p05", "p50", "p95",
        }

    def test_default_quantiles_match_report_percentiles(self):
        assert DIGEST_QUANTILES == (0.05, 0.50, 0.95)
        digest = QuantileDigest()
        for x in (5, 1, 4, 2, 3):
            digest.observe(float(x))
        assert digest.quantile(0.5) == 3.0


class TestFixedBinHistogram:
    def test_edge_validation(self):
        with pytest.raises(ValueError):
            FixedBinHistogram([1.0])
        with pytest.raises(ValueError):
            FixedBinHistogram([1.0, 1.0, 2.0])
        with pytest.raises(ValueError):
            FixedBinHistogram.log_bins(0.0, 1.0, 4)
        with pytest.raises(ValueError):
            FixedBinHistogram.linear_bins(2.0, 1.0, 4)

    def test_counts_land_in_the_right_bins(self):
        hist = FixedBinHistogram([0.0, 1.0, 2.0, 3.0])
        hist.observe_many(np.array([-1.0, 0.5, 0.7, 1.5, 2.5, 9.0]))
        assert hist.underflow == 1
        assert hist.overflow == 1
        assert hist.counts.tolist() == [2, 1, 1]
        assert hist.count == 6
        # Bins are [lo, hi): the left edge counts, the top edge
        # overflows.
        solo = FixedBinHistogram([0.0, 1.0])
        solo.observe(0.0)
        solo.observe(1.0)
        assert solo.counts.tolist() == [1]
        assert solo.underflow == 0
        assert solo.overflow == 1

    def test_quantiles_are_conservative_upper_edges(self):
        hist = FixedBinHistogram([0.0, 1.0, 2.0, 4.0])
        hist.observe_many(np.array([0.5, 0.6, 1.5, 3.0]))
        assert hist.quantile(0.25) == 1.0
        # Conservative: the upper edge of the bin holding the rank.
        assert hist.quantile(1.0) == 4.0
        # Conservative w.r.t. the ceil(q*n)-th order statistic.
        ordered = np.sort(np.array([0.5, 0.6, 1.5, 3.0]))
        for q in (0.1, 0.5, 0.9):
            rank = max(int(np.ceil(q * ordered.size)) - 1, 0)
            assert hist.quantile(q) >= ordered[rank]

    def test_under_and_overflow_quantiles_are_exact_extremes(self):
        hist = FixedBinHistogram([1.0, 2.0])
        hist.observe_many(np.array([0.25, 0.5, 5.0, 7.0]))
        assert hist.quantile(0.1) == 0.25
        assert hist.quantile(0.99) == 7.0

    def test_empty_quantile_is_nan(self):
        assert math.isnan(FixedBinHistogram([0.0, 1.0]).quantile(0.5))

    def test_observe_many_matches_scalar_observe(self):
        rng = np.random.default_rng(3)
        values = rng.exponential(1e-6, size=500)
        bulk = FixedBinHistogram.log_bins(1e-9, 1e-3, 40)
        single = FixedBinHistogram.log_bins(1e-9, 1e-3, 40)
        bulk.observe_many(values)
        for x in values:
            single.observe(x)
        assert bulk.counts.tolist() == single.counts.tolist()
        assert bulk.underflow == single.underflow
        assert bulk.overflow == single.overflow
        b, s = bulk.summary(), single.summary()
        # Summation order differs (one vector sum vs 500 additions),
        # so the mean may differ in the last ulp.
        assert b.pop("mean") == pytest.approx(s.pop("mean"))
        assert b == s

    def test_summary_shape(self):
        hist = FixedBinHistogram.linear_bins(0.0, 10.0, 5)
        hist.observe_many(np.arange(1.0, 10.0))
        summary = hist.summary()
        assert summary["count"] == 9
        assert summary["min"] == 1.0
        assert summary["max"] == 9.0
        assert summary["mean"] == 5.0


class TestWindowedOutages:
    def test_windows_and_padding(self):
        # One device, 5 ticks, window 2 -> 3 windows, last padded.
        mask = np.array([True, False, False, False, True])
        windows = windowed_outages(mask, np.array([0]), np.array([5]), 2)
        assert windows.shape == (1, 3)
        assert windows[0].tolist() == [True, False, True]

    def test_shorter_device_pads_as_powered(self):
        mask = np.array([True, True, True, True, False, True])
        # Device 1 owns only 2 ticks starting at 4; the padded tail
        # counts as powered (False).
        windows = windowed_outages(
            mask, np.array([0, 4]), np.array([4, 2]), 2
        )
        assert windows.shape == (2, 2)
        assert windows[0].tolist() == [True, True]
        assert windows[1].tolist() == [True, False]

    def test_validation(self):
        with pytest.raises(ValueError):
            windowed_outages(np.zeros(4, bool), np.array([0]),
                             np.array([4]), 0)
        with pytest.raises(ValueError):
            windowed_outages(np.zeros(4, bool), np.array([0, 1]),
                             np.array([4]), 1)


class TestCoOutageMatrix:
    def test_symmetric_with_unit_diagonal(self):
        rng = np.random.default_rng(5)
        windows = rng.random((6, 40)) < 0.3
        matrix = co_outage_matrix(windows)
        assert matrix.shape == (6, 6)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 1.0)
        assert np.all(matrix >= 0.0) and np.all(matrix <= 1.0)

    def test_identical_devices_are_fully_correlated(self):
        row = np.array([True, False, True, False])
        matrix = co_outage_matrix(np.stack([row, row]))
        assert matrix[0, 1] == 1.0

    def test_disjoint_devices_are_uncorrelated(self):
        a = np.array([True, True, False, False])
        b = np.array([False, False, True, True])
        matrix = co_outage_matrix(np.stack([a, b]))
        assert matrix[0, 1] == 0.0

    def test_outage_free_devices_count_as_correlated(self):
        quiet = np.zeros(4, dtype=bool)
        noisy = np.array([True, False, False, False])
        matrix = co_outage_matrix(np.stack([quiet, quiet, noisy]))
        assert matrix[0, 0] == 1.0  # empty ∪ empty
        assert matrix[0, 1] == 1.0
        assert matrix[0, 2] == 0.0  # empty vs non-empty
        assert np.allclose(np.diag(matrix), 1.0)

    def test_jaccard_value(self):
        a = np.array([True, True, False])
        b = np.array([True, False, True])
        matrix = co_outage_matrix(np.stack([a, b]))
        assert matrix[0, 1] == pytest.approx(1.0 / 3.0)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            co_outage_matrix(np.zeros(4, dtype=bool))


class TestFindStorms:
    def test_no_storms(self):
        assert find_storms(np.array([0.0, 0.2, 0.4]), 1.0) == []

    def test_single_storm_with_bounds(self):
        fractions = np.array([0.1, 0.6, 0.8, 0.3, 0.9])
        storms = find_storms(fractions, window_s=2.0, threshold=0.5)
        assert len(storms) == 2
        first, second = storms
        assert first["start_s"] == 2.0
        assert first["end_s"] == 6.0
        assert first["duration_s"] == 4.0
        assert first["peak_fraction"] == 0.8
        assert first["windows"] == 2
        # A storm running to the end of the timeline is closed out.
        assert second["start_s"] == 8.0
        assert second["end_s"] == 10.0
        assert second["peak_fraction"] == 0.9

    def test_threshold_is_inclusive(self):
        storms = find_storms(np.array([0.5]), 1.0, threshold=0.5)
        assert len(storms) == 1
