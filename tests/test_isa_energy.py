"""Unit tests for the instruction energy/cycle model."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.energy import (
    DEFAULT_MIX,
    EnergyModel,
    InstrClass,
    classify,
)
from repro.isa.instructions import Instruction, Opcode


class TestClassification:
    @pytest.mark.parametrize(
        "opcode,cls",
        [
            (Opcode.ADD, InstrClass.ALU),
            (Opcode.ADDI, InstrClass.ALU),
            (Opcode.MUL, InstrClass.MUL),
            (Opcode.DIVU, InstrClass.DIV),
            (Opcode.LD, InstrClass.LOAD),
            (Opcode.ST, InstrClass.STORE),
            (Opcode.BEQ, InstrClass.BRANCH),
            (Opcode.JAL, InstrClass.JUMP),
            (Opcode.NOP, InstrClass.NOP),
            (Opcode.HALT, InstrClass.HALT),
        ],
    )
    def test_classify(self, opcode, cls):
        assert classify(Instruction(opcode)) is cls

    def test_every_opcode_has_a_class(self):
        for opcode in Opcode:
            assert classify(Instruction(opcode)) in InstrClass


class TestEnergyModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(frequency_hz=0)
        with pytest.raises(ValueError):
            EnergyModel(vdd=0)
        with pytest.raises(ValueError):
            EnergyModel(static_power_w=-1)

    def test_instruction_energy_includes_leakage(self):
        lossless = EnergyModel(static_power_w=0.0)
        leaky = EnergyModel(static_power_w=50e-6)
        assert leaky.instruction_energy(InstrClass.ALU) > lossless.instruction_energy(
            InstrClass.ALU
        )

    def test_leakage_share_shrinks_with_frequency(self):
        slow = EnergyModel(frequency_hz=0.1e6)
        fast = EnergyModel(frequency_hz=10e6)
        assert fast.instruction_energy(InstrClass.ALU) < slow.instruction_energy(
            InstrClass.ALU
        )

    def test_dynamic_energy_scales_with_vdd_squared(self):
        base = EnergyModel(static_power_w=0.0)
        boosted = EnergyModel(static_power_w=0.0, vdd=2.0)
        ratio = boosted.instruction_energy(InstrClass.ALU) / base.instruction_energy(
            InstrClass.ALU
        )
        assert ratio == pytest.approx(4.0)

    def test_instruction_time(self):
        model = EnergyModel(frequency_hz=1e6)
        assert model.instruction_time(InstrClass.ALU) == pytest.approx(1e-6)
        assert model.instruction_time(InstrClass.DIV) == pytest.approx(8e-6)

    def test_average_power_near_calibration_target(self):
        """At 1 MHz the default model should draw roughly 0.21 mW."""
        power = EnergyModel().average_power()
        assert 0.15e-3 < power < 0.30e-3

    def test_average_power_rejects_empty_mix(self):
        with pytest.raises(ValueError):
            EnergyModel().average_power({})

    def test_default_mix_sums_to_one(self):
        assert sum(DEFAULT_MIX.values()) == pytest.approx(1.0)

    def test_scaled_copy(self):
        base = EnergyModel()
        fast = base.scaled(frequency_hz=8e6)
        assert fast.frequency_hz == 8e6
        assert base.frequency_hz == 1e6  # original untouched
        assert fast.cycles == base.cycles

    def test_scaled_preserves_vdd_by_default(self):
        model = EnergyModel(vdd=1.2).scaled(frequency_hz=2e6)
        assert model.vdd == 1.2
