"""Scenario tests for the wait-and-compute baseline."""

import pytest

from repro.baselines.waitcompute import WaitComputePlatform
from repro.harvest.sources import constant_trace, square_trace
from repro.storage.capacitor import Capacitor, ChargeEfficiency
from repro.system.simulator import SystemSimulator
from repro.workloads.base import AbstractWorkload

DT = 1e-4


def lossless_cap(capacitance=47e-6):
    return Capacitor(
        capacitance,
        v_max_v=3.3,
        leak_resistance_ohm=1e18,
        efficiency=ChargeEfficiency(1.0, 1.0, 0.0, 1.0),
    )


def make_platform(units=None, unit_instructions=5_000, **kwargs):
    workload = AbstractWorkload(
        total_units=units, instructions_per_unit=unit_instructions
    )
    return WaitComputePlatform(workload, lossless_cap(), **kwargs)


class TestCharging:
    def test_waits_until_unit_energy(self):
        platform = make_platform()
        target = platform.unit_energy_target_j()
        ticks = 0
        while platform.tick(100e-6, DT).state == "charge":
            ticks += 1
            assert ticks < 100_000, "never started"
        # It started only once the target was stored (pre-boot).
        assert platform.boots == 1
        assert (
            platform.storage.energy_j + platform.boot_energy_j
            >= target - 100e-6 * DT - 1e-12
        )

    def test_charge_time_scales_with_unit_size(self):
        small = make_platform(unit_instructions=1_000)
        large = make_platform(unit_instructions=20_000)

        def ticks_to_boot(platform):
            for tick in range(200_000):
                platform.tick(50e-6, DT)
                if platform.boots:
                    return tick
            raise AssertionError("never booted")

        assert ticks_to_boot(large) > 5 * ticks_to_boot(small)

    def test_boot_costs_energy(self):
        platform = make_platform()
        while not platform.boots:
            platform.tick(200e-6, DT)
        assert platform.consumed_j >= platform.boot_energy_j


class TestExecution:
    def test_commits_at_unit_boundaries_only(self):
        platform = make_platform(units=2, unit_instructions=2_000)
        trace = constant_trace(300e-6, 10.0)
        result = SystemSimulator(trace, platform).run()
        assert result.completed
        assert result.forward_progress == 4_000
        assert result.units_completed == 2

    def test_brownout_loses_whole_unit(self):
        platform = make_platform(units=1, unit_instructions=50_000)
        # Charge just enough to boot, then cut power: the estimate was
        # fine but we drain it early by injecting a tiny storage level.
        while not platform.boots:
            platform.tick(500e-6, DT)
        platform.storage.set_energy(platform.storage.energy_j * 0.01)
        # Run on almost no stored energy with no income -> brownout.
        # (The first ~10 ticks only burn down the 1 ms boot stall.)
        for _ in range(100):
            report = platform.tick(0.0, DT)
            assert report.state == "run"
            if platform.ledger.rollbacks:
                break
        assert platform.ledger.rollbacks == 1
        assert platform.ledger.persistent == 0
        assert platform.workload.units_completed == 0

    def test_graceful_poweroff_between_units(self):
        """After finishing a unit without energy for the next, the MCU
        sleeps instead of browning out mid-unit."""
        platform = make_platform(units=4, unit_instructions=2_000)
        trace = square_trace(
            high_w=400e-6, low_w=0.0, period_s=0.5, duty=0.5, duration_s=8.0
        )
        result = SystemSimulator(trace, platform).run()
        assert result.rollbacks == 0
        assert result.units_completed >= 2


class TestValidation:
    def test_margin_validation(self):
        with pytest.raises(ValueError):
            make_platform(energy_margin=0.9)

    def test_boot_cost_validation(self):
        with pytest.raises(ValueError):
            make_platform(boot_time_s=-1.0)

    def test_stats_keys(self):
        platform = make_platform()
        platform.tick(1e-6, DT)
        stats = platform.stats()
        assert stats["backups"] == 0
        assert "forward_progress" in stats
