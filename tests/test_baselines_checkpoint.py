"""Scenario tests for the software-checkpointing baselines."""

import pytest

from repro.baselines.checkpoint import CheckpointConfig, CheckpointPlatform
from repro.core.config import NVPConfig
from repro.core.nvp import NVPPlatform
from repro.harvest.sources import constant_trace, square_trace
from repro.storage.capacitor import Capacitor, ChargeEfficiency
from repro.system.simulator import SystemSimulator
from repro.workloads.base import AbstractWorkload

DT = 1e-4


def lossless_cap(capacitance=4.7e-6):
    return Capacitor(
        capacitance,
        v_max_v=3.3,
        leak_resistance_ohm=1e18,
        efficiency=ChargeEfficiency(1.0, 1.0, 0.0, 1.0),
    )


def make_platform(config=None, units=None):
    workload = AbstractWorkload(total_units=units, instructions_per_unit=5_000)
    return CheckpointPlatform(workload, lossless_cap(), config)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"checkpoint_words": 0},
            {"instructions_per_word": 0},
            {"trigger": "bogus"},
            {"period_instructions": 0},
            {"margin": 0.5},
            {"boot_time_s": -1.0},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            CheckpointConfig(**kwargs)

    def test_rejects_volatile_technology(self):
        from repro.nvm.technology import SRAM_REFERENCE

        with pytest.raises(ValueError):
            CheckpointConfig(technology=SRAM_REFERENCE)


class TestCostModel:
    def test_checkpoint_dearer_than_hardware_backup(self):
        """A software checkpoint (copy loop + conservative RAM window)
        must cost far more than an NVP's distributed hardware backup."""
        checkpoint = make_platform()
        nvp = NVPPlatform(AbstractWorkload(), lossless_cap(), NVPConfig())
        assert (
            checkpoint.checkpoint_energy_j()
            > 5 * nvp.controller.worst_case_backup_energy_j()
        )
        assert (
            checkpoint.checkpoint_time_s()
            > 5 * nvp.controller.worst_case_backup_time_s()
        )

    def test_restore_includes_boot(self):
        platform = make_platform()
        assert platform.restore_time_s() >= platform.config.boot_time_s

    def test_bigger_ram_window_costs_more(self):
        small = make_platform(CheckpointConfig(checkpoint_words=32))
        large = make_platform(CheckpointConfig(checkpoint_words=512))
        assert large.checkpoint_energy_j() > 4 * small.checkpoint_energy_j()


class TestVoltageTrigger:
    def run_square(self, duration=2.0):
        # A 0.33 uF reservoir (~1.8 uJ) cannot bridge the 100 ms
        # outages, so every off-period forces a checkpoint.
        workload = AbstractWorkload(instructions_per_unit=5_000)
        platform = CheckpointPlatform(
            workload, lossless_cap(0.33e-6), CheckpointConfig(trigger="voltage")
        )
        trace = square_trace(
            high_w=1000e-6, low_w=0.0, period_s=0.2, duty=0.5, duration_s=duration
        )
        result = SystemSimulator(trace, platform, stop_when_finished=False).run()
        return platform, result

    def test_checkpoints_on_energy_droop(self):
        platform, result = self.run_square()
        assert result.backups >= 3
        assert result.restores >= 3
        assert result.forward_progress > 0

    def test_progress_survives_outages(self):
        platform, result = self.run_square()
        assert platform.ledger.persistent > 0
        assert result.rollbacks == 0


class TestPeriodicTrigger:
    def test_checkpoints_every_period(self):
        config = CheckpointConfig(trigger="periodic", period_instructions=1_000)
        platform = make_platform(config)
        trace = constant_trace(800e-6, 1.0)
        result = SystemSimulator(trace, platform, stop_when_finished=False).run()
        executed = result.total_executed
        # One checkpoint per ~1000 instructions (within rounding).
        assert result.backups == pytest.approx(executed / 1_000, rel=0.2)

    def test_rollback_to_last_checkpoint_on_crash(self):
        config = CheckpointConfig(trigger="periodic", period_instructions=500)
        platform = make_platform(config)
        # Boot it on abundant power.
        for _ in range(20_000):
            platform.tick(800e-6, DT)
            if platform.ledger.persistent > 0:
                break
        assert platform.ledger.persistent > 0
        persistent_before = platform.ledger.persistent
        # Cut power below a tick's worth of run energy -> brownout.
        # (The checkpoint's copy-loop stall takes a few ticks to clear.)
        platform.storage.set_energy(1e-12)
        for _ in range(100):
            platform.tick(0.0, DT)
            if platform.ledger.rollbacks:
                break
        assert platform.ledger.rollbacks >= 1
        assert platform.ledger.persistent == persistent_before


class TestStats:
    def test_stats_report_checkpoint_energy(self):
        platform, result = TestVoltageTrigger().run_square(duration=1.0)
        assert result.backup_energy_j > 0
        assert result.restore_energy_j > 0
