"""The batched active-tick exact kernel (`repro.system.exactkernel`).

Three layers of pinning:

* **engine-selection matrix** — every combination of fast-forward
  on/off, exact-batch on/off, and a ``sim.tick`` subscriber must pick
  the documented engines (tick counters partition the run accordingly)
  and return bit-identical results;
* **kernel-vs-scalar properties** — ``storage_run`` advanced N ticks
  equals N scalar ``platform.tick`` calls field by field, across
  denormal/zero/blocked power inputs, and stops exactly at an
  energy-threshold landing;
* **cumsum discipline** — the oracle path's :func:`numpy.cumsum`
  integration reproduces every partial sum of the scalar ``+=`` loop
  bit for bit (the property the module docstring stakes its exactness
  claim on).
"""

import math

import numpy as np
import pytest

from repro.harvest.sources import square_trace, wristwatch_trace
from repro.obs.events import EventBus
from repro.system import exactkernel
from repro.system.presets import (
    build_checkpoint,
    build_nvp,
    build_oracle,
    build_wait_compute,
    standard_rectifier,
)
from repro.system.simulator import SystemSimulator
from repro.workloads.base import AbstractWorkload
from repro.workloads.suite import build_kernel, make_functional_workload

DT = 1e-4


def run_sim(builder, trace, *, fast=None, batch=None, bus=None):
    simulator = SystemSimulator(
        trace,
        builder(AbstractWorkload()),
        rectifier=standard_rectifier(),
        stop_when_finished=False,
        bus=bus,
        use_fast_forward=fast,
        use_exact_batch=batch,
    )
    return simulator.run(), simulator


class TestEngineSelectionMatrix:
    """fast_forward x exact_batch x sim.tick subscriber."""

    TRACE = staticmethod(lambda: square_trace(400e-6, 0.0, 2.0, 0.08, 3.0))

    @pytest.mark.parametrize("builder", [
        build_nvp, build_wait_compute, build_checkpoint, build_oracle,
    ], ids=["nvp", "wait", "checkpoint", "oracle"])
    @pytest.mark.parametrize("fast", [None, False], ids=["ff", "noff"])
    @pytest.mark.parametrize("batch", [None, False], ids=["batch", "nobatch"])
    @pytest.mark.parametrize("ticks_subscribed", [False, True],
                             ids=["free", "tick-sub"])
    def test_selection_and_bit_identity(
        self, builder, fast, batch, ticks_subscribed
    ):
        trace = self.TRACE()
        bus = None
        if ticks_subscribed:
            bus = EventBus()
            bus.subscribe(lambda event: None)  # subscribes to sim.tick too
        result, sim = run_sim(builder, trace, fast=fast, batch=batch, bus=bus)
        reference, _ = run_sim(builder, trace, fast=False, batch=False)
        assert result.to_dict() == reference.to_dict()
        # The three counters always partition the trace.
        assert (
            sim.ticks_fast_forwarded + sim.ticks_batched + sim.ticks_exact
            == len(trace)
        )
        # A sim.tick subscriber forces the scalar interpreter outright;
        # otherwise each engine runs iff its knob allows it.
        if ticks_subscribed:
            assert sim.ticks_fast_forwarded == 0
            assert sim.ticks_batched == 0
            assert sim.ticks_exact == len(trace)
            return
        dormant_capable = builder is not build_oracle
        if fast is False or not dormant_capable:
            assert sim.ticks_fast_forwarded == 0
        else:
            assert sim.ticks_fast_forwarded > 0
        if batch is False:
            assert sim.ticks_batched == 0
        else:
            assert sim.ticks_batched > 0

    def test_functional_workloads_batch_through_isa_kernel(self):
        """NV16 kernels batch via the block engine + isa kernels."""
        trace = wristwatch_trace(0.3, seed=3)
        platform = build_nvp(
            make_functional_workload(build_kernel("fir"), frames=2)
        )
        simulator = SystemSimulator(
            trace, platform, rectifier=standard_rectifier(),
            stop_when_finished=False,
        )
        simulator.run()
        assert simulator.ticks_batched > 0

    def test_batchable_workload_is_a_capability_protocol(self):
        """Modes come from supports_exact_batch, not an exact-type check.

        A subclass that overrides neither ``advance`` nor ``finished``
        keeps its base class's mode (the PR 8 exact-type check silently
        dropped such subclasses to the scalar path); overriding either
        hook opts the subclass out.
        """
        class Custom(AbstractWorkload):
            pass

        class OverridesAdvance(AbstractWorkload):
            def advance(self, time_budget_s):
                return super().advance(time_budget_s)

        class OverridesFinished(AbstractWorkload):
            @property
            def finished(self):
                return super().finished

        assert exactkernel.batchable_workload(
            AbstractWorkload()
        ) == "recurrence"
        assert exactkernel.batchable_workload(Custom()) == "recurrence"
        assert exactkernel.batchable_workload(OverridesAdvance()) is None
        assert exactkernel.batchable_workload(OverridesFinished()) is None
        assert exactkernel.batchable_workload(
            make_functional_workload(build_kernel("fir"), frames=1)
        ) == "isa"
        assert exactkernel.batchable_workload(object()) is None


# -- kernel-vs-scalar properties ---------------------------------------------


def warmed_nvp(powers):
    """A build_nvp platform scalar-ticked until powered on.

    Returns ``(platform, index)`` — deterministic, so calling it twice
    with the same powers yields bit-identical twins.
    """
    platform = build_nvp(AbstractWorkload())
    index = 0
    while platform._state != "on":
        platform.tick(powers[index], DT)
        index += 1
    return platform, index


STORAGE_FIELDS = (
    "energy_j", "total_charged_j", "total_leaked_j", "total_wasted_j",
    "total_delivered_j",
)


def assert_platforms_equal(a, b):
    for field in STORAGE_FIELDS:
        assert getattr(a.storage, field) == getattr(b.storage, field), field
    assert a.consumed_j == b.consumed_j
    assert a._stall_s == b._stall_s
    assert a.ledger.volatile == b.ledger.volatile
    assert a.workload._retired == b.workload._retired
    assert a.workload._time_credit_s == b.workload._time_credit_s


class TestStorageRunProperties:
    @pytest.mark.parametrize("power_kind", [
        "steady", "noisy", "zero", "denormal", "blocked_mix",
    ])
    def test_batch_equals_n_scalar_ticks(self, power_kind):
        """exact_batch over N ticks == N scalar platform.tick calls."""
        warm = [80e-6] * 4000
        rng = np.random.default_rng(11)
        if power_kind == "steady":
            tail = [80e-6] * 2000
        elif power_kind == "noisy":
            tail = rng.uniform(0.0, 200e-6, size=2000).tolist()
        elif power_kind == "zero":
            tail = [0.0] * 2000
        elif power_kind == "denormal":
            tail = [5e-324, 1e-310, 0.0, 2.5e-320] * 500
        else:  # below the converter's minimum current: blocked input
            tail = ([1e-9, 0.0, 80e-6] * 700)[:2000]
        powers = warm + tail

        batched, start = warmed_nvp(powers)
        scalar, start2 = warmed_nvp(powers)
        assert start == start2
        runs = batched.exact_batch(powers, start, len(powers), DT)
        assert runs is not None and runs[0][0] == "run"
        ticks = runs[0][1]
        assert ticks > 0
        for i in range(start, start + ticks):
            report = scalar.tick(powers[i], DT)
            assert report.state == "run"
        assert_platforms_equal(batched, scalar)

    def test_exact_threshold_landing_stops_before_the_crossing_tick(self):
        """A batch whose energy lands exactly on the stop threshold
        consumes exactly the ticks before the pre-tick check fires."""
        powers = [80e-6] * 4000 + [0.0] * 3000
        probe, start = warmed_nvp(powers)
        trajectory = []
        index = start
        while True:
            report = probe.tick(powers[index], DT)
            if report.state != "run":
                break
            trajectory.append(probe.storage.energy_j)
            index += 1
        k = len(trajectory) // 2
        landing = trajectory[k]  # energy after k+1 run ticks

        fresh, start2 = warmed_nvp(powers)
        assert start2 == start
        ticks, _ = exactkernel.get_kernel().storage_run(
            fresh, powers, start, len(powers), DT, stop_energy_j=landing
        )
        # Pre-tick check: the tick that *starts* at the landing energy
        # is an event tick, so exactly k+1 ticks batch.
        assert ticks == k + 1
        assert fresh.storage.energy_j == landing

    def test_deficit_tick_is_left_for_the_scalar_path(self):
        """The collapse tick's candidate values are fully discarded.

        A periodic-trigger checkpoint platform with an unreachable
        period has no voltage protection, so on a dead trace it runs
        its storage down to a genuine deficit.
        """
        from repro.baselines.checkpoint import (
            CheckpointConfig,
            CheckpointPlatform,
        )
        from repro.storage.capacitor import Capacitor

        def warmed():
            platform = CheckpointPlatform(
                AbstractWorkload(),
                Capacitor(150e-9),
                CheckpointConfig(
                    trigger="periodic", period_instructions=10**9
                ),
            )
            index = 0
            while platform._state != "on":
                platform.tick(powers[index], DT)
                index += 1
            return platform, index

        powers = [80e-6] * 4000 + [0.0] * 50000
        batched, start = warmed()
        scalar, start2 = warmed()
        assert start == start2
        ticks, _ = exactkernel.get_kernel().storage_run(
            batched, powers, start, len(powers), DT
        )
        # Without a stop threshold the batch runs until the deficit.
        assert start + ticks < len(powers)
        for i in range(start, start + ticks):
            report = scalar.tick(powers[i], DT)
            assert report.state == "run"
        assert_platforms_equal(batched, scalar)
        # The very next tick is the collapse both engines agree on.
        batched.tick(powers[start + ticks], DT)
        scalar.tick(powers[start + ticks], DT)
        assert batched._state == scalar._state == "off"
        assert batched.ledger.rollbacks == scalar.ledger.rollbacks == 1
        assert_platforms_equal(batched, scalar)


class TestOracleCumsumDiscipline:
    def test_cumsum_matches_scalar_partial_sums(self):
        """np.cumsum over 1-D float64 == the left-to-right += loop."""
        rng = np.random.default_rng(7)
        values = np.concatenate([
            rng.uniform(0.0, 1e-9, size=4096),
            np.array([5e-324, 1e-310, 0.0, 2.5e-320, 1e-300]),
            rng.uniform(0.0, 1e-9, size=4096),
        ])
        seeded = np.empty(len(values) + 1)
        seeded[0] = 0.123456789e-3
        seeded[1:] = values
        partial = np.cumsum(seeded)
        accumulator = seeded[0]
        for i, value in enumerate(values):
            accumulator += value
            assert accumulator == partial[i + 1]

    def test_oracle_run_matches_scalar_ticking(self):
        batched = build_oracle(AbstractWorkload())
        scalar = build_oracle(AbstractWorkload())
        ticks = exactkernel.get_kernel().oracle_run(batched, 0, 5000, DT)
        assert ticks == 5000
        for _ in range(ticks):
            scalar.tick(0.0, DT)
        assert batched.consumed_j == scalar.consumed_j
        assert batched.workload._retired == scalar.workload._retired
        assert (
            batched.workload._time_credit_s == scalar.workload._time_credit_s
        )
        assert batched.ledger.persistent == scalar.ledger.persistent
        assert batched.ledger.volatile == scalar.ledger.volatile
        assert batched.ledger.commits == scalar.ledger.commits

    def test_oracle_run_stops_before_the_finishing_tick(self):
        workload = AbstractWorkload(total_units=1, instructions_per_unit=500)
        batched = build_oracle(workload)
        ticks = exactkernel.get_kernel().oracle_run(batched, 0, 5000, DT)
        assert not batched.finished
        report = batched.tick(0.0, DT)  # the finishing tick, scalar
        assert batched.finished
        assert report.state == "run"
        scalar = build_oracle(
            AbstractWorkload(total_units=1, instructions_per_unit=500)
        )
        count = 0
        while not scalar.finished:
            scalar.tick(0.0, DT)
            count += 1
        assert count == ticks + 1
        assert batched.consumed_j == scalar.consumed_j


class TestFleetBatching:
    def test_fleet_routes_active_ticks_through_the_kernel(self):
        from repro.fleet import FleetKernel, replay_device, resolve_device_config

        config = resolve_device_config(
            {"platform": "nvp", "source": "wristwatch", "duration_s": 1.0}
        )
        kernel = FleetKernel([config])
        result = kernel.run()[0]
        assert kernel.ticks_batched > 0
        single, _ = replay_device(config)
        assert result.to_dict() == single.to_dict()


class TestIsaKernelEquivalence:
    """Functional (NV16) workloads through the isa batch kernels.

    The block engine makes compiled workloads batchable; these tests
    pin the sim-level contract: batched runs are bit-identical to
    scalar ticking across platforms, traces and completion modes, the
    finishing tick is consumed in-batch, synthesized event streams
    match, and unit-boundary platforms stay scalar.
    """

    @staticmethod
    def run_kernel_sim(builder, trace, kernel="fir", frames=2, batch=None,
                       swf=False, bus=None, **sim_kwargs):
        workload = make_functional_workload(build_kernel(kernel), frames=frames)
        simulator = SystemSimulator(
            trace,
            builder(workload),
            rectifier=standard_rectifier(),
            stop_when_finished=swf,
            bus=bus,
            use_exact_batch=batch,
            **sim_kwargs,
        )
        return simulator.run(), simulator

    @pytest.mark.parametrize("builder", [
        build_nvp, build_checkpoint, build_oracle,
    ])
    @pytest.mark.parametrize("kernel", ["fir", "crc"])
    @pytest.mark.parametrize("swf", [False, True])
    def test_batched_run_bit_identical(self, builder, kernel, swf):
        trace = wristwatch_trace(3.0, seed=7)
        batched, sim = self.run_kernel_sim(
            builder, trace, kernel=kernel, batch=None, swf=swf
        )
        scalar, _ = self.run_kernel_sim(
            builder, trace, kernel=kernel, batch=False, swf=swf
        )
        assert sim.ticks_batched > 0
        assert batched.to_dict() == scalar.to_dict()

    def test_periodic_checkpoint_trigger_batches_conservatively(self):
        from repro.baselines.checkpoint import CheckpointConfig

        config = CheckpointConfig(trigger="periodic", period_instructions=700)

        def builder(workload):
            return build_checkpoint(workload, config=config)

        trace = wristwatch_trace(3.0, seed=11)
        batched, sim = self.run_kernel_sim(builder, trace, batch=None)
        scalar, _ = self.run_kernel_sim(builder, trace, batch=False)
        assert sim.ticks_batched > 0
        assert batched.to_dict() == scalar.to_dict()

    def test_finishing_tick_consumed_in_batch(self):
        """The oracle's whole run — completion included — batches."""
        trace = wristwatch_trace(1.0, seed=3)
        result, sim = self.run_kernel_sim(
            build_oracle, trace, batch=None, swf=True
        )
        assert result.completed
        assert sim.ticks_exact == 0
        assert sim.ticks_batched > 0

    def test_wait_compute_keeps_functional_workloads_scalar(self):
        """Unit-boundary commits can't be pre-checked: no isa batching."""
        trace = wristwatch_trace(2.0, seed=5)
        batched, sim = self.run_kernel_sim(
            build_wait_compute, trace, batch=None
        )
        scalar, _ = self.run_kernel_sim(build_wait_compute, trace, batch=False)
        assert sim.ticks_batched == 0
        assert batched.to_dict() == scalar.to_dict()

    @pytest.mark.parametrize("builder", [build_nvp, build_checkpoint])
    def test_synthesized_event_streams_identical(self, builder):
        from repro.obs import events as ev

        trace = wristwatch_trace(2.0, seed=9)

        def stream(batch):
            bus = EventBus()
            log = bus.record(names=ev.NON_TICK_EVENT_NAMES)
            result, _ = self.run_kernel_sim(
                builder, trace, batch=batch, bus=bus, sample_stride=500,
            )
            return [(e.name, e.t_s, e.seq, e.data) for e in log], result

        scalar_events, scalar_result = stream(False)
        assert scalar_events
        batched_events, batched_result = stream(None)
        assert batched_events == scalar_events
        assert batched_result.to_dict() == scalar_result.to_dict()

    def test_fleet_batches_functional_devices(self):
        from repro.fleet import FleetKernel, replay_device, resolve_device_config

        configs = [
            resolve_device_config({
                "platform": platform, "source": "wristwatch",
                "duration_s": 2.0, "kernel": "fir", "frames": 2,
                "stop_when_finished": swf,
            })
            for platform in ("nvp", "checkpoint", "oracle")
            for swf in (False, True)
        ]
        kernel = FleetKernel(configs)
        results = kernel.run()
        assert kernel.ticks_batched > 0
        for config, result in zip(configs, results):
            single, _ = replay_device(config)
            assert result.to_dict() == single.to_dict(), config["platform"]
